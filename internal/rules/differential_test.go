package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/httpsim"
	"repro/internal/netsim"
)

// referenceSelect is an independent, deliberately naive re-implementation
// of the selection semantics, used as a differential oracle: sort rules
// by priority (stable), walk them, and apply the same action semantics.
// It shares no code with Engine.Select beyond the Rule types and
// pickSplit. It also returns the number of rules examined, to pin the
// compiled engine's scan-equivalent Scanned accounting.
func referenceSelect(rs []Rule, tables map[string]map[string]Backend, req *httpsim.Request, rnd float64, info BackendInfo) (Backend, bool, int) {
	if info == nil {
		info = allAlive{}
	}
	// Stable sort by priority descending (insertion order preserved).
	sorted := append([]Rule(nil), rs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Priority > sorted[j-1].Priority; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	scanned := 0
	for _, r := range sorted {
		scanned++
		if !r.Match.Matches(req) {
			continue
		}
		switch r.Action.Type {
		case ActionTable:
			key := req.Cookie(r.Action.TableCookie)
			if key == "" {
				continue
			}
			if b, ok := tables[r.Action.Table][key]; ok && info.Alive(b) {
				return b, true, scanned
			}
		case ActionSplit:
			if b, ok := pickSplit(r.Action.Split, rnd, info); ok {
				return b, true, scanned
			}
		}
	}
	return Backend{}, false, len(sorted)
}

// diffBackends is the backend pool the differential generators draw from.
func diffBackends() []Backend {
	backends := make([]Backend, 6)
	for i := range backends {
		backends[i] = Backend{
			Name: fmt.Sprintf("B%d", i),
			Addr: netsim.HostPort{IP: netsim.IPv4(10, 0, 2, byte(i+1)), Port: 80},
		}
	}
	return backends
}

// diffGlobs exercises every index bucket: literal, prefix, suffix,
// middle-star (prefix-anchored), '?' (residual), catch-all, empty.
var diffGlobs = []string{
	"*", "", "*.jpg", "*.css", "/api/*", "/img/*.png", "*.php",
	"/exact/path", "/a?c/*", "*x*y*", "/api/*/detail",
}

var diffPaths = []string{
	"/a.jpg", "/style.css", "/api/v1/users", "/img/x.png", "/index.php",
	"/plain", "/exact/path", "/abc/z", "/axbyc", "/api/v1/detail", "",
}

var diffHosts = []string{"", "svc", "other.com", "tenant-a"}
var diffMethods = []string{"", "GET", "POST", "PUT"}

// randomDiffTable generates a random rule table plus learned sticky
// bindings and health, shared by the differential test and fuzz target.
func randomDiffTable(rng *rand.Rand, backends []Backend) ([]Rule, *Engine, map[string]map[string]Backend, *StaticInfo) {
	nRules := 1 + rng.Intn(12)
	rs := make([]Rule, 0, nRules)
	for i := 0; i < nRules; i++ {
		r := Rule{
			Name:     fmt.Sprintf("r%d", i),
			Priority: rng.Intn(5),
			Match:    Match{URLGlob: diffGlobs[rng.Intn(len(diffGlobs))]},
		}
		if rng.Intn(3) == 0 {
			r.Match.Host = diffHosts[1+rng.Intn(len(diffHosts)-1)]
		}
		if rng.Intn(4) == 0 {
			r.Match.Method = diffMethods[1+rng.Intn(len(diffMethods)-1)]
		}
		if rng.Intn(5) == 0 {
			r.Match.CookieName = "session"
		}
		if rng.Intn(6) == 0 {
			r.Match.HeaderName = "Accept-Language"
			r.Match.HeaderGlob = "en*"
		}
		if rng.Intn(6) == 0 {
			r.Action = Action{Type: ActionTable, Table: "tab", TableCookie: "session"}
		} else {
			n := 1 + rng.Intn(3)
			var split []WeightedBackend
			allLL := rng.Intn(6) == 0
			for k := 0; k < n; k++ {
				w := float64(rng.Intn(4)) // includes degenerate weight 0
				if allLL {
					w = -1
				}
				split = append(split, WeightedBackend{
					Backend: backends[rng.Intn(len(backends))],
					Weight:  w,
				})
			}
			r.Action = Action{Type: ActionSplit, Split: split}
		}
		rs = append(rs, r)
	}
	e := NewEngine(rs)
	tables := map[string]map[string]Backend{"tab": {}}
	if rng.Intn(2) == 0 {
		b := backends[rng.Intn(len(backends))]
		e.Learn("tab", "u1", b)
		tables["tab"]["u1"] = b
	}
	info := &StaticInfo{Dead: map[string]bool{}, Loads: map[string]float64{}}
	for _, b := range backends {
		if rng.Intn(5) == 0 {
			info.Dead[b.Name] = true
		}
		info.Loads[b.Name] = rng.Float64()
	}
	return rs, e, tables, info
}

func randomDiffRequest(rng *rand.Rand) *httpsim.Request {
	req := httpsim.NewRequest(diffPaths[rng.Intn(len(diffPaths))], "ignored")
	req.Method = diffMethods[rng.Intn(len(diffMethods))]
	host := diffHosts[rng.Intn(len(diffHosts))]
	if host == "" {
		delete(req.Headers, "Host")
	} else {
		req.SetHeader("Host", host)
	}
	if rng.Intn(2) == 0 {
		req.SetHeader("Cookie", "session=u1")
	}
	if rng.Intn(3) == 0 {
		req.SetHeader("Accept-Language", "en-GB,en;q=0.9")
	}
	return req
}

// checkDifferential runs one table×request probe through the compiled
// Select, the retained SelectLinear, and the independent oracle, and
// fails on any divergence including the Scanned count.
func checkDifferential(t *testing.T, trial int, rs []Rule, e *Engine,
	tables map[string]map[string]Backend, req *httpsim.Request, rnd float64, info *StaticInfo) {
	t.Helper()
	got := e.Select(req, rnd, info)
	lin := e.SelectLinear(req, rnd, info)
	if got.OK != lin.OK || got.Backend != lin.Backend || got.Scanned != lin.Scanned || got.Rule != lin.Rule {
		t.Fatalf("trial %d: compiled vs linear diverged:\n rules=%v\n req=%s %s host=%q cookie=%q rnd=%v dead=%v\n compiled=%+v\n linear=%+v",
			trial, rs, req.Method, req.Path, req.Header("Host"), req.Header("Cookie"), rnd, info.Dead, got, lin)
	}
	wantB, wantOK, wantScanned := referenceSelect(rs, tables, req, rnd, info)
	if got.OK != wantOK || got.Backend != wantB || got.Scanned != wantScanned {
		t.Fatalf("trial %d: compiled vs oracle diverged:\n rules=%v\n req=%s %s host=%q cookie=%q rnd=%v dead=%v\n compiled=(%v,%v,scanned=%d) oracle=(%v,%v,scanned=%d)",
			trial, rs, req.Method, req.Path, req.Header("Host"), req.Header("Cookie"), rnd, info.Dead,
			got.Backend, got.OK, got.Scanned, wantB, wantOK, wantScanned)
	}
}

// TestDifferentialAgainstReference fuzzes random rule tables and requests
// and checks the compiled Engine.Select against both the retained linear
// scan and the independent oracle, Scanned included.
func TestDifferentialAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	backends := diffBackends()
	for trial := 0; trial < 1500; trial++ {
		rs, e, tables, info := randomDiffTable(rng, backends)
		req := randomDiffRequest(rng)
		rnd := rng.Float64()
		checkDifferential(t, trial, rs, e, tables, req, rnd, info)
	}
}

// TestDifferentialAcrossUpdate re-runs probes after rule updates on the
// same engine: the recompiled index and the sticky-hygiene pass must not
// change selection for tables that still reference the learned backends.
func TestDifferentialAcrossUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	backends := diffBackends()
	for trial := 0; trial < 300; trial++ {
		rs, e, tables, info := randomDiffTable(rng, backends)
		// Update to a fresh random table on the same engine.
		rs2 := rs
		if rng.Intn(2) == 0 {
			rs2, _, _, _ = randomDiffTable(rng, backends)
			if err := e.Update(rs2); err != nil {
				t.Fatalf("trial %d: update: %v", trial, err)
			}
			// Mirror the hygiene pass in the oracle's view of the tables.
			live := map[Backend]bool{}
			anySplit := false
			tableLive := map[string]bool{}
			for _, r := range rs2 {
				if r.Action.Type == ActionSplit {
					anySplit = true
					for _, wb := range r.Action.Split {
						live[wb.Backend] = true
					}
				}
				if r.Action.Type == ActionTable {
					tableLive[r.Action.Table] = true
				}
			}
			for name, tab := range tables {
				if !tableLive[name] {
					delete(tables, name)
					continue
				}
				if !anySplit {
					continue
				}
				for k, b := range tab {
					if !live[b] {
						delete(tab, k)
					}
				}
			}
		}
		req := randomDiffRequest(rng)
		rnd := rng.Float64()
		checkDifferential(t, trial, rs2, e, tables, req, rnd, info)
	}
}
