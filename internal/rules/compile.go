package rules

import (
	"sort"
	"strings"
)

// Rule-table compilation.
//
// The paper's Figure 6 measures the cost Yoda inherits from HAProxy: rule
// lookup scans the whole priority-ordered table, so lookup latency grows
// linearly with table size. The simulated latency model keeps that cost
// (it is what the figure reproduces), but the *process* running the
// simulation does not have to pay it for real. Update compiles the sorted
// table into per-field indexes so Select examines only the rules that
// could possibly match, in priority order:
//
//   - host:     rules with an exact Host match, hashed by host
//   - method:   rules with a Method match (and no Host), hashed by method
//   - literal:  metacharacter-free URL globs, hashed by exact path
//   - prefix:   globs of the form "lit*…" — bucketed by the literal
//     prefix, grouped by prefix length so a lookup is one hash probe per
//     distinct length present in the table
//   - suffix:   globs of the form "*lit" (e.g. "*.jpg") — bucketed by the
//     literal suffix, grouped by suffix length
//   - residual: everything else ("*", globs with '?', cookie/header-only
//     rules) — always candidates
//
// Each rule lands in exactly one bucket, chosen so that a request that
// misses the bucket provably fails the rule's Match — the index never
// changes which rule wins, only how many rules are touched to find it.
// Scan-equivalent accounting: the linear scan's Scanned equals the
// winner's position in the sorted table + 1 (or the table size when
// nothing terminates), because every earlier rule is examined exactly
// once. The compiled path recovers the same number from the winner's
// precomputed position without visiting the skipped rules, so the Figure
// 6 latency model and every metric derived from it stay bit-identical.

// index is the compiled form of a sorted rule table. Rule IDs are
// positions in the sorted table; every bucket list is ascending, i.e.
// already in evaluation (priority) order.
type index struct {
	host     map[string][]int32
	method   map[string][]int32
	literal  map[string][]int32
	prefix   map[int]map[string][]int32
	suffix   map[int]map[string][]int32
	residual []int32

	prefixLens []int // keys of prefix, sorted
	suffixLens []int // keys of suffix, sorted

	// maxLists bounds how many candidate lists one lookup can touch, so
	// the Select scratch can be sized once at Update time.
	maxLists int
}

// compile builds the index over rules already sorted by priority.
func compile(rs []Rule) index {
	ix := index{
		host:    make(map[string][]int32),
		method:  make(map[string][]int32),
		literal: make(map[string][]int32),
		prefix:  make(map[int]map[string][]int32),
		suffix:  make(map[int]map[string][]int32),
	}
	for i := range rs {
		id := int32(i)
		m := &rs[i].Match
		switch {
		case m.Host != "":
			ix.host[m.Host] = append(ix.host[m.Host], id)
		case m.Method != "":
			ix.method[m.Method] = append(ix.method[m.Method], id)
		default:
			ix.addGlob(m.URLGlob, id)
		}
	}
	for l := range ix.prefix {
		ix.prefixLens = append(ix.prefixLens, l)
	}
	for l := range ix.suffix {
		ix.suffixLens = append(ix.suffixLens, l)
	}
	sort.Ints(ix.prefixLens)
	sort.Ints(ix.suffixLens)
	// residual + host + method + literal + one per distinct prefix/suffix
	// length.
	ix.maxLists = 4 + len(ix.prefixLens) + len(ix.suffixLens)
	return ix
}

// addGlob buckets a rule by the shape of its URL glob.
func (ix *index) addGlob(g string, id int32) {
	if g == "" || strings.IndexByte(g, '?') >= 0 {
		// Unconstrained path, or single-byte wildcards the buckets cannot
		// express: always a candidate.
		ix.residual = append(ix.residual, id)
		return
	}
	first := strings.IndexByte(g, '*')
	if first < 0 {
		ix.literal[g] = append(ix.literal[g], id)
		return
	}
	last := strings.LastIndexByte(g, '*')
	pre, suf := g[:first], g[last+1:]
	switch {
	case pre != "":
		// "pre*…": the path must start with pre. (Anything after the first
		// star, including more stars, is re-checked by the full Match.)
		b := ix.prefix[len(pre)]
		if b == nil {
			b = make(map[string][]int32)
			ix.prefix[len(pre)] = b
		}
		b[pre] = append(b[pre], id)
	case suf != "":
		// "*…*suf": the path must end with suf.
		b := ix.suffix[len(suf)]
		if b == nil {
			b = make(map[string][]int32)
			ix.suffix[len(suf)] = b
		}
		b[suf] = append(b[suf], id)
	default:
		// "*", "*a*", …: no usable literal anchor.
		ix.residual = append(ix.residual, id)
	}
}

// candList is one bucket being merged during a lookup.
type candList struct {
	ids []int32
	pos int
}

// gather appends every bucket the request can hit onto lists (a reusable
// scratch slice) and returns it. Each list is ascending by rule ID.
func (ix *index) gather(lists []candList, host, method, path string) []candList {
	if len(ix.residual) > 0 {
		lists = append(lists, candList{ids: ix.residual})
	}
	if host != "" && len(ix.host) > 0 {
		if ids := ix.host[host]; len(ids) > 0 {
			lists = append(lists, candList{ids: ids})
		}
	}
	if len(ix.method) > 0 {
		if ids := ix.method[method]; len(ids) > 0 {
			lists = append(lists, candList{ids: ids})
		}
	}
	if len(ix.literal) > 0 {
		if ids := ix.literal[path]; len(ids) > 0 {
			lists = append(lists, candList{ids: ids})
		}
	}
	for _, l := range ix.prefixLens {
		if len(path) < l {
			continue
		}
		if ids := ix.prefix[l][path[:l]]; len(ids) > 0 {
			lists = append(lists, candList{ids: ids})
		}
	}
	for _, l := range ix.suffixLens {
		if len(path) < l {
			continue
		}
		if ids := ix.suffix[l][path[len(path)-l:]]; len(ids) > 0 {
			lists = append(lists, candList{ids: ids})
		}
	}
	return lists
}

// next pops the smallest rule ID across the lists, or -1 when all are
// exhausted. Rules land in exactly one bucket, so no ID repeats.
func next(lists []candList) int32 {
	best := -1
	var bestID int32
	for li := range lists {
		l := &lists[li]
		if l.pos >= len(l.ids) {
			continue
		}
		if best < 0 || l.ids[l.pos] < bestID {
			best, bestID = li, l.ids[l.pos]
		}
	}
	if best < 0 {
		return -1
	}
	lists[best].pos++
	return bestID
}
