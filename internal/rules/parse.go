package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// Resolver maps backend names appearing in rule text to Backend records.
type Resolver func(name string) (Backend, bool)

// ParseRules parses the textual rule format, one rule per line:
//
//	rule <name> prio=<n> [url=<glob>] [host=<h>] [method=<m>]
//	     [cookie=<name>[:<glob>]] [header=<name>[:<glob>]]
//	     (split=<backend>:<weight>,... | table=<table>:<cookie>)
//
// Blank lines and lines starting with '#' are ignored. The resolver
// translates backend names; unknown names are an error so that policy
// typos fail loudly at install time rather than blackholing traffic.
func ParseRules(text string, resolve Resolver) ([]Rule, error) {
	var out []Rule
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := parseRuleLine(line, resolve)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func parseRuleLine(line string, resolve Resolver) (Rule, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "rule" {
		return Rule{}, fmt.Errorf("expected 'rule <name> ...': %q", line)
	}
	r := Rule{Name: fields[1]}
	hasAction := false
	for _, f := range fields[2:] {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return Rule{}, fmt.Errorf("bad field %q", f)
		}
		key, val := kv[0], kv[1]
		switch key {
		case "prio":
			p, err := strconv.Atoi(val)
			if err != nil {
				return Rule{}, fmt.Errorf("bad priority %q", val)
			}
			r.Priority = p
		case "url":
			r.Match.URLGlob = val
		case "host":
			r.Match.Host = val
		case "method":
			r.Match.Method = val
		case "cookie":
			name, glob := splitColon(val)
			r.Match.CookieName, r.Match.CookieGlob = name, glob
		case "header":
			name, glob := splitColon(val)
			r.Match.HeaderName, r.Match.HeaderGlob = name, glob
		case "split":
			split, err := parseSplit(val, resolve)
			if err != nil {
				return Rule{}, err
			}
			r.Action = Action{Type: ActionSplit, Split: split}
			hasAction = true
		case "table":
			table, cookie := splitColon(val)
			if table == "" || cookie == "" {
				return Rule{}, fmt.Errorf("table action needs table:cookie, got %q", val)
			}
			r.Action = Action{Type: ActionTable, Table: table, TableCookie: cookie}
			hasAction = true
		default:
			return Rule{}, fmt.Errorf("unknown field %q", key)
		}
	}
	if !hasAction {
		return Rule{}, fmt.Errorf("rule %s has no action", r.Name)
	}
	return r, nil
}

func splitColon(s string) (string, string) {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

func parseSplit(val string, resolve Resolver) ([]WeightedBackend, error) {
	var out []WeightedBackend
	for _, part := range strings.Split(val, ",") {
		name, wstr := splitColon(part)
		if name == "" {
			return nil, fmt.Errorf("empty backend in split %q", val)
		}
		w := 1.0
		if wstr != "" {
			var err error
			w, err = strconv.ParseFloat(wstr, 64)
			if err != nil {
				return nil, fmt.Errorf("bad weight %q", wstr)
			}
			if w != -1 && w < 0 {
				return nil, fmt.Errorf("weight %v not allowed (use -1 for least-loaded)", w)
			}
		}
		b, ok := resolve(name)
		if !ok {
			return nil, fmt.Errorf("unknown backend %q", name)
		}
		out = append(out, WeightedBackend{Backend: b, Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("split with no backends")
	}
	hasLL, hasPos := false, false
	for _, wb := range out {
		if wb.Weight == -1 {
			hasLL = true
		} else if wb.Weight > 0 {
			hasPos = true
		}
	}
	if hasLL && hasPos {
		// A -1 backend in a weighted draw is never picked: the split would
		// silently stop using it. Fail loudly at parse time instead.
		return nil, fmt.Errorf("split %q mixes least-loaded (-1) and positive weights; use all -1 or all non-negative", val)
	}
	return out, nil
}
