package securesim

import (
	"bytes"
	"crypto/ecdh"
	"io"
	"math/rand"

	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

// rngReader adapts the simulation's deterministic RNG to the io.Reader
// that key generation expects, keeping runs reproducible.
type rngReader struct{ rng *rand.Rand }

func (r rngReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(r.rng.Intn(256))
	}
	return len(p), nil
}

// RandReader returns a deterministic entropy source for key generation.
func RandReader(rng *rand.Rand) io.Reader { return rngReader{rng} }

// FetchResult is the outcome of a secure fetch.
type FetchResult struct {
	Resp *httpsim.Response
	Err  error
}

// Fetch performs one HTTPS-style request through the simulated network:
// TCP connect, securesim handshake (verifying the server's certificate
// against the pinned expectation), encrypted request, decrypted response.
// done fires inside the event loop.
func Fetch(host *netsim.Host, addr netsim.HostPort, pinnedCert []byte, req *httpsim.Request, done func(FetchResult)) {
	rng := host.Network().Rand()
	priv, err := ecdh.P256().GenerateKey(RandReader(rng))
	if err != nil {
		done(FetchResult{Err: err})
		return
	}
	hello, err := MarshalClientHello(priv.PublicKey().Bytes())
	if err != nil {
		done(FetchResult{Err: err})
		return
	}

	r := *req
	r.Headers = map[string]string{}
	for k, v := range req.Headers {
		r.Headers[k] = v
	}
	r.Headers["Connection"] = "close"
	plainReq := r.Marshal()

	var key [32]byte
	handshakeDone := false
	var inBuf bytes.Buffer // pre-handshake server bytes
	recvOffset := uint64(0)
	parser := &httpsim.ResponseParser{}
	finished := false
	finish := func(res FetchResult) {
		if finished {
			return
		}
		finished = true
		done(res)
	}

	tcp.Dial(host, addr, tcp.Callbacks{
		OnEstablished: func(c *tcp.Conn) {
			c.Write(hello)
		},
		OnData: func(c *tcp.Conn, d []byte) {
			if !handshakeDone {
				inBuf.Write(d)
				cert, serverPub, n, perr := ParseServerHello(inBuf.Bytes())
				if perr != nil {
					c.Abort()
					finish(FetchResult{Err: perr})
					return
				}
				if n == 0 {
					return // incomplete ServerHello
				}
				if !bytes.Equal(cert, pinnedCert) {
					c.Abort()
					finish(FetchResult{Err: ErrBadCert})
					return
				}
				key, perr = ClientFinish(priv, serverPub)
				if perr != nil {
					c.Abort()
					finish(FetchResult{Err: perr})
					return
				}
				handshakeDone = true
				// Send the encrypted request.
				c.Write(KeystreamXOR(key, DirClientToServer, 0, plainReq))
				// Any bytes past the hello are already application data.
				d = inBuf.Bytes()[n:]
				if len(d) == 0 {
					return
				}
			}
			plain := KeystreamXOR(key, DirServerToClient, recvOffset, d)
			recvOffset += uint64(len(d))
			resps, perr := parser.Feed(plain)
			if perr != nil {
				c.Abort()
				finish(FetchResult{Err: perr})
				return
			}
			if len(resps) > 0 {
				c.Close()
				finish(FetchResult{Resp: resps[0]})
			}
		},
		OnPeerClose: func(c *tcp.Conn) { c.Close() },
		OnFail: func(c *tcp.Conn, err error) {
			finish(FetchResult{Err: err})
		},
	}, tcp.DefaultConfig())
}
