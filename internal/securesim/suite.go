// Package securesim implements the SSL termination described in §5.2 as
// a simplified TLS-like protocol engineered to coexist with Yoda's two
// availability mechanisms:
//
//   - The cipher is length-preserving (AES-256-CTR keystream XOR), so the
//     ciphertext of a byte stream occupies exactly the same sequence
//     space as its plaintext. Yoda can therefore keep tunneling encrypted
//     flows at L3 — decrypting client payloads toward the backend and
//     encrypting backend payloads toward the client by keystream offset
//     (derived from the TCP sequence number), packet by packet, with no
//     buffering and no reframing.
//
//   - The handshake is deterministic given the client's hello and a
//     per-service secret: the server-side ECDH key is derived as
//     HKDF(serviceSecret, clientHello), so *any* Yoda instance — before
//     or after a failure — recomputes the same session key and the same
//     ServerHello bytes, exactly as the deterministic SYN-ACK ISN lets
//     any instance resume a handshake (§4.1). On failure during the
//     certificate transfer the next instance simply resends the identical
//     ServerHello, which is the behaviour the paper prescribes.
//
// The trade-off versus real TLS is documented and deliberate: no per-
// connection forward secrecy (the service secret plus a captured hello
// reproduce the session key) and no record-level integrity. What is real:
// X25519-style ECDH on P-256 via crypto/ecdh, AES-256 from crypto/aes,
// and SHA-256 key derivation.
package securesim

import (
	"crypto/aes"
	"crypto/ecdh"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol constants.
var (
	helloMagic = []byte("YTLS")
	// P-256 uncompressed points are 65 bytes.
	pubKeySize = 65
)

// ClientHelloSize is the wire size of a ClientHello.
var ClientHelloSize = len(helloMagic) + pubKeySize

// Errors.
var (
	ErrBadHello      = errors.New("securesim: malformed hello")
	ErrBadCert       = errors.New("securesim: certificate mismatch")
	ErrKeyDerivation = errors.New("securesim: key derivation failed")
)

// Identity is a service's TLS-side configuration: the certificate bytes
// presented to clients and the secret all Yoda instances share for
// deterministic key derivation (installed by the operator alongside the
// certificate, as §5.2's "security certificates set by the operators").
type Identity struct {
	Cert   []byte
	Secret []byte
}

// NewIdentity builds an identity from operator-supplied material.
func NewIdentity(cert, secret []byte) *Identity {
	return &Identity{Cert: append([]byte(nil), cert...), Secret: append([]byte(nil), secret...)}
}

// MarshalClientHello produces the client's first flight for the given
// ephemeral public key.
func MarshalClientHello(clientPub []byte) ([]byte, error) {
	if len(clientPub) != pubKeySize {
		return nil, ErrBadHello
	}
	out := make([]byte, 0, ClientHelloSize)
	out = append(out, helloMagic...)
	out = append(out, clientPub...)
	return out, nil
}

// IsClientHello reports whether data begins with a (possibly incomplete)
// ClientHello. Complete tells whether all bytes are present.
func IsClientHello(data []byte) (is, complete bool) {
	n := len(helloMagic)
	if len(data) < n {
		// Could still become a hello; match the available prefix.
		for i := range data {
			if data[i] != helloMagic[i] {
				return false, false
			}
		}
		return true, false
	}
	for i := 0; i < n; i++ {
		if data[i] != helloMagic[i] {
			return false, false
		}
	}
	return true, len(data) >= ClientHelloSize
}

// ParseClientHello extracts the client's public key.
func ParseClientHello(data []byte) ([]byte, error) {
	if is, complete := IsClientHello(data); !is || !complete {
		return nil, ErrBadHello
	}
	return append([]byte(nil), data[len(helloMagic):ClientHelloSize]...), nil
}

// MarshalServerHello produces the server's reply: magic, certificate
// (length-prefixed) and the server public key.
func MarshalServerHello(cert, serverPub []byte) []byte {
	out := make([]byte, 0, len(helloMagic)+2+len(cert)+pubKeySize)
	out = append(out, helloMagic...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(cert)))
	out = append(out, cert...)
	out = append(out, serverPub...)
	return out
}

// ParseServerHello extracts the certificate and server public key,
// returning the number of bytes consumed. n=0 with nil error means more
// data is needed.
func ParseServerHello(data []byte) (cert, serverPub []byte, n int, err error) {
	head := len(helloMagic) + 2
	if len(data) < head {
		return nil, nil, 0, nil
	}
	for i := range helloMagic {
		if data[i] != helloMagic[i] {
			return nil, nil, 0, ErrBadHello
		}
	}
	certLen := int(binary.BigEndian.Uint16(data[len(helloMagic):]))
	total := head + certLen + pubKeySize
	if len(data) < total {
		return nil, nil, 0, nil
	}
	cert = append([]byte(nil), data[head:head+certLen]...)
	serverPub = append([]byte(nil), data[head+certLen:total]...)
	return cert, serverPub, total, nil
}

// ServerHelloSize returns the wire size of this identity's ServerHello.
func (id *Identity) ServerHelloSize() int {
	return len(helloMagic) + 2 + len(id.Cert) + pubKeySize
}

// deriveServerKey deterministically derives the service-side ECDH key for
// a given client hello: priv = H(secret ‖ clientPub ‖ counter), retrying
// the counter until the bytes form a valid P-256 scalar.
func (id *Identity) deriveServerKey(clientPub []byte) (*ecdh.PrivateKey, error) {
	curve := ecdh.P256()
	for ctr := byte(0); ctr < 64; ctr++ {
		h := sha256.New()
		h.Write(id.Secret)
		h.Write(clientPub)
		h.Write([]byte{ctr})
		if priv, err := curve.NewPrivateKey(h.Sum(nil)); err == nil {
			return priv, nil
		}
	}
	return nil, ErrKeyDerivation
}

// ServerAccept runs the service side of the handshake: given the client's
// hello, it returns the ServerHello bytes and the session key. The result
// is a pure function of (identity, hello), so any instance produces
// byte-identical output — the recovery property.
func (id *Identity) ServerAccept(clientHello []byte) (serverHello []byte, key [32]byte, err error) {
	clientPub, err := ParseClientHello(clientHello)
	if err != nil {
		return nil, key, err
	}
	curve := ecdh.P256()
	peer, err := curve.NewPublicKey(clientPub)
	if err != nil {
		return nil, key, fmt.Errorf("%w: %v", ErrBadHello, err)
	}
	priv, err := id.deriveServerKey(clientPub)
	if err != nil {
		return nil, key, err
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return nil, key, fmt.Errorf("%w: %v", ErrBadHello, err)
	}
	key = sha256.Sum256(shared)
	return MarshalServerHello(id.Cert, priv.PublicKey().Bytes()), key, nil
}

// ClientFinish derives the session key on the client side from its own
// ephemeral private key and the server's public key.
func ClientFinish(clientPriv *ecdh.PrivateKey, serverPub []byte) (key [32]byte, err error) {
	peer, err := ecdh.P256().NewPublicKey(serverPub)
	if err != nil {
		return key, fmt.Errorf("%w: %v", ErrBadHello, err)
	}
	shared, err := clientPriv.ECDH(peer)
	if err != nil {
		return key, fmt.Errorf("%w: %v", ErrBadHello, err)
	}
	return sha256.Sum256(shared), nil
}

// KeystreamXOR encrypts/decrypts data in place-semantics (returning a new
// slice) at the given absolute stream offset: AES-256-CTR where the
// counter block is offset/16 and the intra-block position offset%16.
// Because XOR is an involution the same call decrypts. Offsets make the
// operation stateless per packet — exactly what per-packet tunnel
// rewriting needs.
func KeystreamXOR(key [32]byte, dir byte, offset uint64, data []byte) []byte {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic("securesim: aes.NewCipher: " + err.Error()) // 32-byte key cannot fail
	}
	out := make([]byte, len(data))
	var ctr [16]byte
	var ks [16]byte
	blockIdx := offset / 16
	within := int(offset % 16)
	for i := 0; i < len(data); {
		ctr[0] = dir // domain-separate the two directions
		binary.BigEndian.PutUint64(ctr[8:], blockIdx)
		block.Encrypt(ks[:], ctr[:])
		for ; within < 16 && i < len(data); within++ {
			out[i] = data[i] ^ ks[within]
			i++
		}
		within = 0
		blockIdx++
	}
	return out
}

// Directions for KeystreamXOR's domain separation.
const (
	DirClientToServer byte = 1
	DirServerToClient byte = 2
)
