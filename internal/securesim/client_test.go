package securesim

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/httpsim"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

// miniTerminator is a minimal TLS-terminating HTTP endpoint for client
// tests: handshake via Identity.ServerAccept, then decrypt requests,
// serve a canned response, encrypt it back.
func miniTerminator(t *testing.T, n *netsim.Network, id *Identity, body []byte) netsim.HostPort {
	t.Helper()
	h := netsim.NewHost(n, netsim.IPv4(10, 0, 9, 1))
	tcp.Listen(h, 443, func(c *tcp.Conn) tcp.Callbacks {
		var buf bytes.Buffer
		var key [32]byte
		handshaken := false
		recvOff := uint64(0)
		sendOff := uint64(0)
		return tcp.Callbacks{
			OnData: func(c *tcp.Conn, d []byte) {
				if !handshaken {
					buf.Write(d)
					if is, complete := IsClientHello(buf.Bytes()); !is || !complete {
						return
					}
					hello := buf.Bytes()[:ClientHelloSize]
					serverHello, k, err := id.ServerAccept(hello)
					if err != nil {
						c.Abort()
						return
					}
					key = k
					handshaken = true
					c.Write(serverHello)
					d = buf.Bytes()[ClientHelloSize:]
					if len(d) == 0 {
						return
					}
				}
				plain := KeystreamXOR(key, DirClientToServer, recvOff, d)
				recvOff += uint64(len(d))
				if bytes.Contains(plain, []byte("\r\n\r\n")) {
					resp := httpsim.NewResponse(200, body).Marshal()
					c.Write(KeystreamXOR(key, DirServerToClient, sendOff, resp))
					sendOff += uint64(len(resp))
					c.Close()
				}
			},
			OnPeerClose: func(c *tcp.Conn) { c.Close() },
		}
	}, tcp.DefaultConfig())
	return netsim.HostPort{IP: h.IP(), Port: 443}
}

func TestClientFetchAgainstTerminator(t *testing.T) {
	n := netsim.New(1)
	id := testIdentity()
	addr := miniTerminator(t, n, id, []byte("top secret"))
	client := netsim.NewHost(n, netsim.IPv4(100, 0, 0, 1))
	var res *FetchResult
	Fetch(client, addr, id.Cert, httpsim.NewRequest("/x", "h"), func(r FetchResult) { res = &r })
	n.RunFor(5 * time.Second)
	if res == nil {
		t.Fatal("fetch never resolved")
	}
	if res.Err != nil {
		t.Fatalf("fetch: %v", res.Err)
	}
	if string(res.Resp.Body) != "top secret" {
		t.Fatalf("body: %q", res.Resp.Body)
	}
}

func TestClientRejectsWrongCert(t *testing.T) {
	n := netsim.New(2)
	id := testIdentity()
	addr := miniTerminator(t, n, id, []byte("x"))
	client := netsim.NewHost(n, netsim.IPv4(100, 0, 0, 1))
	var res *FetchResult
	Fetch(client, addr, []byte("not-the-cert"), httpsim.NewRequest("/x", "h"), func(r FetchResult) { res = &r })
	n.RunFor(5 * time.Second)
	if res == nil || res.Err != ErrBadCert {
		t.Fatalf("res = %+v, want cert mismatch", res)
	}
}

func TestClientFailsOnDeadServer(t *testing.T) {
	n := netsim.New(3)
	client := netsim.NewHost(n, netsim.IPv4(100, 0, 0, 1))
	// Nothing attached at the target address: the TCP dial times out.
	cfg := tcp.DefaultConfig()
	_ = cfg
	var res *FetchResult
	Fetch(client, netsim.HostPort{IP: netsim.IPv4(10, 0, 9, 9), Port: 443}, []byte("c"),
		httpsim.NewRequest("/x", "h"), func(r FetchResult) { res = &r })
	n.RunFor(10 * time.Minute)
	if res == nil || res.Err == nil {
		t.Fatalf("res = %+v, want dial failure", res)
	}
}

func TestClientHandlesGarbageServerHello(t *testing.T) {
	n := netsim.New(4)
	h := netsim.NewHost(n, netsim.IPv4(10, 0, 9, 1))
	tcp.Listen(h, 443, func(c *tcp.Conn) tcp.Callbacks {
		return tcp.Callbacks{
			OnData: func(c *tcp.Conn, d []byte) {
				c.Write([]byte("NOPE-this-is-not-a-server-hello-at-all!!"))
			},
		}
	}, tcp.DefaultConfig())
	client := netsim.NewHost(n, netsim.IPv4(100, 0, 0, 1))
	var res *FetchResult
	Fetch(client, netsim.HostPort{IP: h.IP(), Port: 443}, []byte("c"),
		httpsim.NewRequest("/x", "h"), func(r FetchResult) { res = &r })
	n.RunFor(10 * time.Second)
	if res == nil || res.Err == nil {
		t.Fatalf("res = %+v, want hello parse failure", res)
	}
}

func TestRandReaderDeterministic(t *testing.T) {
	a := make([]byte, 32)
	b := make([]byte, 32)
	r1 := RandReader(newRand(5))
	r2 := RandReader(newRand(5))
	r1.Read(a)
	r2.Read(b)
	if !bytes.Equal(a, b) {
		t.Fatal("RandReader not deterministic for equal seeds")
	}
}

// newRand builds a math/rand source for tests.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
