package securesim

import (
	"bytes"
	"crypto/ecdh"
	"math/rand"
	"testing"
	"testing/quick"
)

func testIdentity() *Identity {
	return NewIdentity([]byte("-----CERT mysite-----"), []byte("service-secret-42"))
}

func clientKey(t testing.TB, seed int64) *ecdh.PrivateKey {
	t.Helper()
	priv, err := ecdh.P256().GenerateKey(RandReader(rand.New(rand.NewSource(seed))))
	if err != nil {
		t.Fatal(err)
	}
	return priv
}

func TestHandshakeAgreesOnKey(t *testing.T) {
	id := testIdentity()
	priv := clientKey(t, 1)
	hello, err := MarshalClientHello(priv.PublicKey().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	serverHello, serverKey, err := id.ServerAccept(hello)
	if err != nil {
		t.Fatal(err)
	}
	cert, serverPub, n, err := ParseServerHello(serverHello)
	if err != nil || n != len(serverHello) {
		t.Fatalf("parse server hello: %v n=%d/%d", err, n, len(serverHello))
	}
	if !bytes.Equal(cert, id.Cert) {
		t.Fatal("certificate not transferred")
	}
	clientSide, err := ClientFinish(priv, serverPub)
	if err != nil {
		t.Fatal(err)
	}
	if clientSide != serverKey {
		t.Fatal("key disagreement")
	}
	if n != id.ServerHelloSize() {
		t.Fatalf("ServerHelloSize = %d, wire = %d", id.ServerHelloSize(), n)
	}
}

func TestHandshakeDeterministicAcrossInstances(t *testing.T) {
	// The recovery property: two independent "instances" holding the same
	// identity produce byte-identical ServerHellos and the same key for
	// the same client hello.
	priv := clientKey(t, 2)
	hello, _ := MarshalClientHello(priv.PublicKey().Bytes())
	a, keyA, errA := testIdentity().ServerAccept(hello)
	b, keyB, errB := testIdentity().ServerAccept(hello)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !bytes.Equal(a, b) || keyA != keyB {
		t.Fatal("handshake not deterministic across instances")
	}
	// A different secret yields different keys.
	other := NewIdentity(testIdentity().Cert, []byte("other-secret"))
	_, keyC, _ := other.ServerAccept(hello)
	if keyC == keyA {
		t.Fatal("different secrets produced the same key")
	}
}

func TestIsClientHello(t *testing.T) {
	priv := clientKey(t, 3)
	hello, _ := MarshalClientHello(priv.PublicKey().Bytes())
	if is, complete := IsClientHello(hello); !is || !complete {
		t.Fatal("full hello not recognized")
	}
	if is, complete := IsClientHello(hello[:10]); !is || complete {
		t.Fatal("partial hello misclassified")
	}
	if is, _ := IsClientHello([]byte("GET / HTTP/1.1\r\n")); is {
		t.Fatal("HTTP request classified as hello")
	}
	if is, _ := IsClientHello([]byte("YT")); !is {
		t.Fatal("hello prefix rejected")
	}
	if is, _ := IsClientHello(nil); !is {
		t.Fatal("empty prefix must stay ambiguous-positive")
	}
}

func TestParseServerHelloIncremental(t *testing.T) {
	id := testIdentity()
	priv := clientKey(t, 4)
	hello, _ := MarshalClientHello(priv.PublicKey().Bytes())
	serverHello, _, _ := id.ServerAccept(hello)
	for cut := 0; cut < len(serverHello); cut++ {
		_, _, n, err := ParseServerHello(serverHello[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if n != 0 {
			t.Fatalf("cut %d: claimed completion", cut)
		}
	}
	_, _, n, err := ParseServerHello(serverHello)
	if err != nil || n != len(serverHello) {
		t.Fatalf("full parse: %v n=%d", err, n)
	}
}

func TestKeystreamInvolution(t *testing.T) {
	var key [32]byte
	for i := range key {
		key[i] = byte(i)
	}
	f := func(data []byte, offset uint32) bool {
		enc := KeystreamXOR(key, DirClientToServer, uint64(offset), data)
		dec := KeystreamXOR(key, DirClientToServer, uint64(offset), enc)
		return bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeystreamOffsetSplitting(t *testing.T) {
	// Encrypting a stream in one shot must equal encrypting it in
	// arbitrary packet-sized pieces at the right offsets — the property
	// per-packet tunnel rewriting relies on.
	var key [32]byte
	key[0] = 7
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 10000)
	rng.Read(data)
	whole := KeystreamXOR(key, DirServerToClient, 0, data)
	var pieced []byte
	off := 0
	for off < len(data) {
		n := 1 + rng.Intn(700)
		if off+n > len(data) {
			n = len(data) - off
		}
		pieced = append(pieced, KeystreamXOR(key, DirServerToClient, uint64(off), data[off:off+n])...)
		off += n
	}
	if !bytes.Equal(whole, pieced) {
		t.Fatal("piecewise keystream diverges from whole-stream")
	}
}

func TestKeystreamDirectionsDiffer(t *testing.T) {
	var key [32]byte
	data := make([]byte, 64)
	a := KeystreamXOR(key, DirClientToServer, 0, data)
	b := KeystreamXOR(key, DirServerToClient, 0, data)
	if bytes.Equal(a, b) {
		t.Fatal("directions share a keystream")
	}
}

func TestBadHellos(t *testing.T) {
	id := testIdentity()
	if _, _, err := id.ServerAccept([]byte("short")); err == nil {
		t.Fatal("short hello accepted")
	}
	bogus := append([]byte("YTLS"), bytes.Repeat([]byte{0xFF}, 65)...)
	if _, _, err := id.ServerAccept(bogus); err == nil {
		t.Fatal("invalid point accepted")
	}
	if _, _, _, err := ParseServerHello([]byte("NOPExxxxxx")); err == nil {
		t.Fatal("bad server hello magic accepted")
	}
}
