// Package trace generates the synthetic stand-in for the paper's one-day
// production traffic trace (§8): 100+ Internet-facing VIPs, 50K+ L7
// rules, 24 hours of traffic in 10-minute windows. The generator is
// calibrated to the marginals the paper reports — per-VIP max-to-average
// ratios spanning roughly 1.07× to 50.3× with a mean near 3.7× (Figure
// 15), Zipf-distributed VIP volumes, and heavy-tailed rule counts — and
// is fully deterministic given a seed.
package trace

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/assignment"
)

// Config parameterizes trace generation.
type Config struct {
	Seed     int64
	NumVIPs  int
	Duration time.Duration
	Window   time.Duration
	// TotalTraffic is the aggregate average traffic across VIPs (req/s).
	TotalTraffic float64
	// MinRules/MaxRules bound the per-VIP rule counts (heavy-tailed).
	MinRules, MaxRules int
}

// DefaultConfig mirrors the paper's trace: 24h, 10-minute windows, 120
// VIPs, 50K+ rules in aggregate.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		NumVIPs:      120,
		Duration:     24 * time.Hour,
		Window:       10 * time.Minute,
		TotalTraffic: 1_000_000,
		MinRules:     150,
		MaxRules:     1800,
	}
}

// VIPTrace is one VIP's demand over the day.
type VIPTrace struct {
	ID     int
	Rules  int
	Series []float64 // traffic per window, req/s
}

// Avg returns the VIP's mean traffic.
func (v *VIPTrace) Avg() float64 {
	if len(v.Series) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v.Series {
		s += x
	}
	return s / float64(len(v.Series))
}

// Max returns the VIP's peak traffic.
func (v *VIPTrace) Max() float64 {
	m := 0.0
	for _, x := range v.Series {
		if x > m {
			m = x
		}
	}
	return m
}

// MaxToAvg returns the peak-to-mean ratio, the quantity Figure 15 plots.
func (v *VIPTrace) MaxToAvg() float64 {
	a := v.Avg()
	if a == 0 {
		return 0
	}
	return v.Max() / a
}

// Trace is the full synthetic day.
type Trace struct {
	Cfg     Config
	VIPs    []VIPTrace
	Windows int
}

// TotalRules sums rules across VIPs.
func (t *Trace) TotalRules() int {
	n := 0
	for i := range t.VIPs {
		n += t.VIPs[i].Rules
	}
	return n
}

// Generate builds a deterministic synthetic trace.
func Generate(cfg Config) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	windows := int(cfg.Duration / cfg.Window)
	if windows < 1 {
		windows = 1
	}
	tr := &Trace{Cfg: cfg, Windows: windows}

	// Zipf-distributed average volumes (s ≈ 1.05 over ranks).
	shares := make([]float64, cfg.NumVIPs)
	sum := 0.0
	for i := range shares {
		shares[i] = 1 / math.Pow(float64(i+1), 1.05)
		sum += shares[i]
	}

	for v := 0; v < cfg.NumVIPs; v++ {
		avg := cfg.TotalTraffic * shares[v] / sum
		series := diurnalSeries(rng, windows, avg)
		target := sampleRatio(rng)
		shapeToRatio(series, target)
		rules := sampleRules(rng, cfg.MinRules, cfg.MaxRules)
		tr.VIPs = append(tr.VIPs, VIPTrace{ID: v, Rules: rules, Series: series})
	}
	return tr
}

// diurnalSeries builds a day curve with a random phase, mild amplitude,
// and multiplicative noise, normalized to the requested mean.
func diurnalSeries(rng *rand.Rand, windows int, avg float64) []float64 {
	phase := rng.Float64() * 2 * math.Pi
	amp := 0.2 + rng.Float64()*0.5
	s := make([]float64, windows)
	sum := 0.0
	for i := range s {
		x := 1 + amp*math.Sin(2*math.Pi*float64(i)/float64(windows)+phase)
		x *= 1 + (rng.Float64()-0.5)*0.1
		if x < 0.05 {
			x = 0.05
		}
		s[i] = x
		sum += x
	}
	scale := avg * float64(windows) / sum
	for i := range s {
		s[i] *= scale
	}
	return s
}

// sampleRatio draws a target max/avg ratio: log-spread between ~1.07 and
// ~50.3 with most mass at the low end, mean ≈ 3.7 (Figure 15's spread).
func sampleRatio(rng *rand.Rand) float64 {
	u := rng.Float64()
	return 1.07 * math.Pow(50.3/1.07, math.Pow(u, 3.9))
}

// shapeToRatio rescales one window into a spike so that max/avg equals
// the target ratio (when the target exceeds the series' natural ratio).
func shapeToRatio(s []float64, target float64) {
	n := float64(len(s))
	if target >= n {
		target = n - 1 // a single-window spike cannot exceed W×avg
	}
	sum, maxV, maxI := 0.0, 0.0, 0
	for i, x := range s {
		sum += x
		if x > maxV {
			maxV, maxI = x, i
		}
	}
	if maxV*n/sum >= target {
		return // natural shape already at/above target
	}
	// Solve y such that y / ((sum - s[maxI] + y)/n) = target.
	rest := sum - s[maxI]
	y := target * rest / (n - target)
	if y > s[maxI] {
		s[maxI] = y
	}
}

// sampleRules draws a heavy-tailed rule count in [min, max].
func sampleRules(rng *rand.Rand, min, max int) int {
	// Bounded Pareto (α = 0.8).
	const alpha = 0.8
	u := rng.Float64()
	lo, hi := float64(min), float64(max)
	x := math.Pow(math.Pow(lo, -alpha)-u*(math.Pow(lo, -alpha)-math.Pow(hi, -alpha)), -1/alpha)
	return int(x)
}

// RatioStats summarizes Figure 15: per-VIP ratios sorted by traffic
// volume (descending), plus min/max/mean.
type RatioStats struct {
	// Ratios[i] is the max/avg ratio of the i-th highest-volume VIP.
	Ratios              []float64
	Min, Max, Mean      float64
	MeanTrafficWeighted float64
}

// Ratios computes Figure 15's series from the trace.
func (t *Trace) Ratios() RatioStats {
	type pair struct {
		avg, ratio float64
	}
	ps := make([]pair, len(t.VIPs))
	for i := range t.VIPs {
		ps[i] = pair{avg: t.VIPs[i].Avg(), ratio: t.VIPs[i].MaxToAvg()}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].avg > ps[b].avg })
	st := RatioStats{Min: math.Inf(1)}
	var wsum, wtot float64
	for _, p := range ps {
		st.Ratios = append(st.Ratios, p.ratio)
		st.Mean += p.ratio
		if p.ratio < st.Min {
			st.Min = p.ratio
		}
		if p.ratio > st.Max {
			st.Max = p.ratio
		}
		wsum += p.ratio * p.avg
		wtot += p.avg
	}
	if len(ps) > 0 {
		st.Mean /= float64(len(ps))
	}
	if wtot > 0 {
		st.MeanTrafficWeighted = wsum / wtot
	}
	return st
}

// ProblemAt builds the Figure-7 assignment problem for one window.
// Following §8.2: n_v = replFactor·t_v/T_y (the paper uses 4×), capped to
// maxInst, with o_v tolerating 1/replFactor failures.
func (t *Trace) ProblemAt(window int, trafficCap float64, ruleCap, maxInst, replFactor int) *assignment.Problem {
	p := &assignment.Problem{
		MaxInst:    maxInst,
		TrafficCap: trafficCap,
		RuleCap:    ruleCap,
	}
	for i := range t.VIPs {
		v := &t.VIPs[i]
		tv := v.Series[window]
		n := int(math.Ceil(float64(replFactor) * tv / trafficCap))
		if n < 1 {
			n = 1
		}
		if n > maxInst {
			n = maxInst
		}
		p.VIPs = append(p.VIPs, assignment.VIP{
			ID:       v.ID,
			Traffic:  tv,
			Rules:    v.Rules,
			Replicas: n,
			Oversub:  1 / float64(replFactor),
		})
	}
	return p
}
