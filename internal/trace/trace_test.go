package trace

import (
	"testing"

	"repro/internal/assignment"
)

func TestGenerateShape(t *testing.T) {
	tr := Generate(DefaultConfig())
	if len(tr.VIPs) != 120 {
		t.Fatalf("VIPs = %d", len(tr.VIPs))
	}
	if tr.Windows != 144 {
		t.Fatalf("windows = %d, want 144 (24h / 10min)", tr.Windows)
	}
	for i := range tr.VIPs {
		v := &tr.VIPs[i]
		if len(v.Series) != tr.Windows {
			t.Fatalf("VIP %d series length %d", v.ID, len(v.Series))
		}
		for w, x := range v.Series {
			if x <= 0 {
				t.Fatalf("VIP %d window %d traffic %v", v.ID, w, x)
			}
		}
		if v.Rules < tr.Cfg.MinRules || v.Rules > tr.Cfg.MaxRules {
			t.Fatalf("VIP %d rules %d outside bounds", v.ID, v.Rules)
		}
	}
}

func TestTraceMatchesPaperMarginals(t *testing.T) {
	tr := Generate(DefaultConfig())
	// 50K+ rules (§8 setup).
	if tr.TotalRules() < 50000 {
		t.Fatalf("total rules = %d, want 50K+", tr.TotalRules())
	}
	st := tr.Ratios()
	// Figure 15: ratios span roughly 1.07–50.3 with mean ≈ 3.7.
	if st.Min < 1.0 || st.Min > 1.6 {
		t.Errorf("min ratio = %.2f, want ~1.07", st.Min)
	}
	if st.Max < 15 || st.Max > 55 {
		t.Errorf("max ratio = %.2f, want up to ~50.3", st.Max)
	}
	if st.Mean < 2.2 || st.Mean > 5.5 {
		t.Errorf("mean ratio = %.2f, want ~3.7", st.Mean)
	}
	if len(st.Ratios) != len(tr.VIPs) {
		t.Fatalf("ratio count = %d", len(st.Ratios))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	for i := range a.VIPs {
		if a.VIPs[i].Rules != b.VIPs[i].Rules {
			t.Fatalf("rules diverged at VIP %d", i)
		}
		for w := range a.VIPs[i].Series {
			if a.VIPs[i].Series[w] != b.VIPs[i].Series[w] {
				t.Fatalf("series diverged at VIP %d window %d", i, w)
			}
		}
	}
	cfg := DefaultConfig()
	cfg.Seed = 2
	c := Generate(cfg)
	diff := false
	for w := range a.VIPs[0].Series {
		if a.VIPs[0].Series[w] != c.VIPs[0].Series[w] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestShapeToRatioExact(t *testing.T) {
	s := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	shapeToRatio(s, 5)
	sum := 0.0
	max := 0.0
	for _, x := range s {
		sum += x
		if x > max {
			max = x
		}
	}
	ratio := max / (sum / float64(len(s)))
	if ratio < 4.99 || ratio > 5.01 {
		t.Fatalf("ratio = %v, want 5", ratio)
	}
}

func TestShapeToRatioNoopWhenAlreadyPeaky(t *testing.T) {
	s := []float64{100, 1, 1, 1}
	before := append([]float64(nil), s...)
	shapeToRatio(s, 2) // natural ratio is ~3.9 > 2
	for i := range s {
		if s[i] != before[i] {
			t.Fatal("peaky series modified")
		}
	}
}

func TestProblemAt(t *testing.T) {
	tr := Generate(DefaultConfig())
	p := tr.ProblemAt(0, 12000, 2000, 400, 4)
	if len(p.VIPs) != len(tr.VIPs) {
		t.Fatalf("problem VIPs = %d", len(p.VIPs))
	}
	for i, v := range p.VIPs {
		if v.Replicas < 1 {
			t.Fatalf("VIP %d replicas = %d", i, v.Replicas)
		}
		if v.Traffic != tr.VIPs[i].Series[0] {
			t.Fatalf("VIP %d traffic mismatch", i)
		}
	}
	// The generated problem must be solvable with a generous fleet.
	a, err := assignment.SolveGreedy(p)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if err := assignment.Verify(p, a); err != nil {
		t.Fatal(err)
	}
}

func TestVIPTraceStats(t *testing.T) {
	v := VIPTrace{Series: []float64{2, 4, 6}}
	if v.Avg() != 4 || v.Max() != 6 {
		t.Fatalf("avg=%v max=%v", v.Avg(), v.Max())
	}
	if v.MaxToAvg() != 1.5 {
		t.Fatalf("ratio = %v", v.MaxToAvg())
	}
	empty := VIPTrace{}
	if empty.Avg() != 0 || empty.MaxToAvg() != 0 {
		t.Fatal("empty stats should be zero")
	}
}
