// Package cluster assembles full simulated testbeds — clients, the L4
// load balancer, Yoda or HAProxy L7 instances, TCPStore (Memcached)
// servers, and backend web servers — mirroring the paper's 60-VM Azure
// deployment (§7: 10 Yoda instances, 10 Memcached servers, 30 backends
// across 4 online services, 10 L4 muxes).
package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/haproxy"
	"repro/internal/httpsim"
	"repro/internal/l4lb"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/stateless"
	"repro/internal/tcpstore"
)

// Address plan for the simulated datacenter.
const (
	yodaSubnet    = 1 // 10.0.1.x — Yoda instances
	backendSubnet = 2 // 10.0.2.x — backend web servers
	storeSubnet   = 3 // 10.0.3.x — Memcached servers
	proxySubnet   = 4 // 10.0.4.x — HAProxy baseline instances
)

// VIPBase is the prefix VIPs are allocated under (10.255.0.x).
func vipIP(i int) netsim.IP { return netsim.IPv4(10, 255, 0, byte(i)) }

// Cluster is an assembled testbed.
type Cluster struct {
	// Net is the event loop control-plane components live on: the whole
	// network for single-loop clusters, shard 0 for sharded ones.
	Net *netsim.Network
	// Sharded is non-nil for clusters built with NewSharded. Hosts are
	// spread round-robin across its shards; drive the simulation through
	// the cluster's Run/RunFor/RunUntilIdle so both kinds of cluster run
	// the same way.
	Sharded *netsim.ShardedNetwork
	L4      *l4lb.LB

	Yoda         []*core.Instance
	HAProxy      []*haproxy.Instance
	StoreServers []*memcache.SimServer
	StoreAddrs   []netsim.HostPort

	Backends map[string]*Backend // by name
	VIPs     map[string]netsim.IP

	Health *rules.StaticInfo // shared backend health/load view

	// Hybrid is the shared stateless-derivation table when the cluster
	// runs in hybrid recovery mode (EnableHybrid before adding components);
	// nil keeps the paper-faithful persist-before-ACK path everywhere.
	Hybrid *stateless.Table
	// hybridPools records, per VIP, the derivable backend pool extracted
	// from the last installed rule set (absent when the rules are not
	// derivable); HybridRefresh rebuilds the table's entries from it.
	hybridPools map[netsim.IP][]stateless.Backend

	nextClient  int
	nextBackend int
	nextYoda    int
	nextProxy   int
	nextVIP     int
}

// Backend is one backend web server plus its rule-engine identity.
type Backend struct {
	Name   string
	Server *httpsim.Server
	Rec    rules.Backend
}

// New creates an empty cluster with an L4 LB.
func New(seed int64) *Cluster {
	n := netsim.New(seed)
	return &Cluster{
		Net:      n,
		L4:       l4lb.New(n, l4lb.DefaultConfig()),
		Backends: make(map[string]*Backend),
		VIPs:     make(map[string]netsim.IP),
		Health:   &rules.StaticInfo{Dead: map[string]bool{}, Loads: map[string]float64{}},
	}
}

// NewSharded creates an empty cluster on a sharded dataplane: the L4 LB
// (and every VIP) lives on shard 0, and hosts added later are spread
// round-robin across shards per component class. With shards == 1 the
// cluster behaves exactly like New(seed).
//
// Sharded clusters restrict the control plane: mutations that touch LB
// or mux state (SetMapping, RemoveInstance, restarts) must happen
// between runs, from the driver — not from timers inside the simulation
// — because shard goroutines read that state lock-free while running.
func NewSharded(seed int64, shards int) *Cluster {
	sn := netsim.NewSharded(seed, shards)
	n := sn.Shard(0)
	return &Cluster{
		Net:      n,
		Sharded:  sn,
		L4:       l4lb.New(n, l4lb.DefaultConfig()),
		Backends: make(map[string]*Backend),
		VIPs:     make(map[string]netsim.IP),
		Health:   &rules.StaticInfo{Dead: map[string]bool{}, Loads: map[string]float64{}},
	}
}

// EnableHybrid switches the cluster into hybrid stateful/stateless
// recovery mode: instances added afterwards share one derivation table
// (and register their SNAT ranges in it), backends added afterwards use
// the table's deterministic ISN key, and InstallPolicy keeps the table's
// VIP entries fresh. Call it on an empty cluster, before adding
// components.
func (c *Cluster) EnableHybrid(secret uint64) *stateless.Table {
	c.Hybrid = stateless.New(secret)
	c.hybridPools = make(map[netsim.IP][]stateless.Backend)
	return c.Hybrid
}

// HybridRecordPolicy classifies a VIP's rule set for derivation (only a
// single universally-matching weighted split is derivable) and refreshes
// the epoch table. InstallPolicy calls it; controllers that bypass
// InstallPolicy call it from their own policy paths.
func (c *Cluster) HybridRecordPolicy(vip netsim.IP, rs []rules.Rule) {
	if c.Hybrid == nil {
		return
	}
	if pool, ok := stateless.PoolFromRules(rs); ok {
		c.hybridPools[vip] = pool
	} else {
		delete(c.hybridPools, vip)
	}
	c.HybridRefresh()
}

// HybridForgetVIP drops a removed VIP from the derivation table.
func (c *Cluster) HybridForgetVIP(vip netsim.IP) {
	if c.Hybrid == nil {
		return
	}
	delete(c.hybridPools, vip)
	c.Hybrid.RemoveVIP(vip)
	c.HybridRefresh()
}

// HybridRefresh rebuilds the derivation table's VIP entries from the
// recorded pools and the L4 LB's current mappings, bumps the epoch, and
// flushes every live instance's still-unpersisted flows — the epoch
// discipline that keeps derivation sound across planned reconfiguration
// (flows predating the bump become persisted residue; only flows
// established under the new entry stay derivable). No-op without
// EnableHybrid.
func (c *Cluster) HybridRefresh() {
	if c.Hybrid == nil {
		return
	}
	for vip, pool := range c.hybridPools {
		c.Hybrid.SetVIP(vip, stateless.VIPEntry{Instances: c.L4.Mapping(vip), Pool: pool})
	}
	c.HybridBumpFlush()
}

// HybridBumpFlush bumps the epoch and flushes every live instance's
// still-unpersisted flows, without rebuilding VIP entries — for callers
// (the reconfig wave hook) that just re-pointed specific entries
// themselves. No-op without EnableHybrid.
func (c *Cluster) HybridBumpFlush() {
	if c.Hybrid == nil {
		return
	}
	c.Hybrid.Bump()
	for _, in := range c.Yoda {
		in.FlushUnpersisted()
	}
}

// netFor picks the event loop for the slot'th host of a component class,
// spreading each class round-robin across shards.
func (c *Cluster) netFor(slot int) *netsim.Network {
	if c.Sharded == nil {
		return c.Net
	}
	return c.Sharded.Shard(slot % c.Sharded.Shards())
}

// multiShard reports whether the dataplane actually runs in parallel —
// the case where SNAT return routing must be stateless (port ranges)
// rather than written into mux maps from instance shards.
func (c *Cluster) multiShard() bool {
	return c.Sharded != nil && c.Sharded.Shards() > 1
}

// Run drives the cluster's dataplane until the deadline.
func (c *Cluster) Run(deadline time.Duration) {
	if c.Sharded != nil {
		c.Sharded.Run(deadline)
		return
	}
	c.Net.Run(deadline)
}

// RunFor advances the cluster's dataplane by d.
func (c *Cluster) RunFor(d time.Duration) {
	if c.Sharded != nil {
		c.Sharded.RunFor(d)
		return
	}
	c.Net.RunFor(d)
}

// RunUntilIdle drains the cluster's dataplane to quiescence (or the
// event cap) and returns the number of events executed.
func (c *Cluster) RunUntilIdle(maxEvents int) int {
	if c.Sharded != nil {
		return c.Sharded.RunUntilIdle(maxEvents)
	}
	return c.Net.RunUntilIdle(maxEvents)
}

// AddStoreServers starts n Memcached servers and returns their addresses.
func (c *Cluster) AddStoreServers(n int, cfg memcache.SimServerConfig) []netsim.HostPort {
	for i := 0; i < n; i++ {
		idx := len(c.StoreServers) + 1
		h := netsim.NewHost(c.netFor(idx-1), netsim.IPv4(10, 0, storeSubnet, byte(idx)))
		srv := memcache.NewSimServer(h, memcache.DefaultPort, cfg)
		c.StoreServers = append(c.StoreServers, srv)
		c.StoreAddrs = append(c.StoreAddrs, netsim.HostPort{IP: h.IP(), Port: memcache.DefaultPort})
	}
	return c.StoreAddrs
}

// AddYoda starts one Yoda instance wired to the cluster's L4 LB and
// TCPStore servers, and returns it. SNAT ranges are partitioned per
// instance automatically.
func (c *Cluster) AddYoda(cfg core.Config, storeCfg tcpstore.Config) *core.Instance {
	c.nextYoda++
	h := netsim.NewHost(c.netFor(c.nextYoda-1), netsim.IPv4(10, 0, yodaSubnet, byte(c.nextYoda)))
	st := tcpstore.New(h, c.StoreAddrs, storeCfg)
	cfg.SNATBase = 20000 + uint16(c.nextYoda)*cfg.SNATCount
	if c.Hybrid != nil {
		cfg.Hybrid = c.Hybrid
		c.Hybrid.RegisterRange(h.IP(), cfg.SNATBase, cfg.SNATCount)
	}
	inst := core.NewInstance(h, c.L4, st, cfg)
	inst.SetBackendInfo(c.Health)
	if c.multiShard() {
		// Stateless SNAT return routing: without it, every instance send
		// would write affinity into mux maps owned by shard 0.
		c.L4.RegisterSNATRange(h.IP(), cfg.SNATBase, cfg.SNATCount)
	}
	c.Yoda = append(c.Yoda, inst)
	return inst
}

// AddYodaN adds n instances with shared configs.
func (c *Cluster) AddYodaN(n int, cfg core.Config, storeCfg tcpstore.Config) {
	for i := 0; i < n; i++ {
		c.AddYoda(cfg, storeCfg)
	}
}

// RestartYoda reboots the Yoda instance in slot i: the host detaches (in
// case it was still attached), a fresh core.Instance with the given
// configs replaces the old one on the same host/IP, and the host rejoins
// the network. All in-memory state of the old incarnation (flows, rules,
// quarantined SNAT ports) is gone — exactly a process restart under a new
// core.Config, the rolling-upgrade primitive. The new incarnation gets a
// fresh SNAT port slice: ports of the old slice may still be referenced
// by flows that migrated to other instances during the pre-restart drain.
func (c *Cluster) RestartYoda(i int, cfg core.Config, storeCfg tcpstore.Config) *core.Instance {
	old := c.Yoda[i]
	h := old.Host()
	old.Store().Close() // abort store connections before the host wipes
	old.Fail()          // silence the old incarnation and drop its state
	h.Reset()           // kernel state wipe: old conns/listeners are gone
	c.nextYoda++
	cfg.SNATBase = 20000 + uint16(c.nextYoda)*cfg.SNATCount
	if c.Hybrid != nil {
		// The new incarnation registers its fresh range (DecodeCookie
		// prefers the latest registration) and sheds any dead mark.
		cfg.Hybrid = c.Hybrid
		c.Hybrid.RegisterRange(h.IP(), cfg.SNATBase, cfg.SNATCount)
		c.Hybrid.Revive(h.IP())
	}
	st := tcpstore.New(h, c.StoreAddrs, storeCfg)
	inst := core.NewInstance(h, c.L4, st, cfg)
	inst.SetBackendInfo(c.Health)
	if c.multiShard() {
		// Replaces the old incarnation's block (same IP); flows that
		// migrated away during the drain keep routing by the affinity
		// entries their new instances installed.
		c.L4.RegisterSNATRange(h.IP(), cfg.SNATBase, cfg.SNATCount)
	}
	h.Reattach()
	c.Yoda[i] = inst
	return inst
}

// AddHAProxy starts one HAProxy-style baseline instance.
func (c *Cluster) AddHAProxy(cfg haproxy.Config) *haproxy.Instance {
	c.nextProxy++
	h := netsim.NewHost(c.netFor(c.nextProxy-1), netsim.IPv4(10, 0, proxySubnet, byte(c.nextProxy)))
	inst := haproxy.NewInstance(h, 80, cfg)
	inst.SetBackendInfo(c.Health)
	c.HAProxy = append(c.HAProxy, inst)
	return inst
}

// AddHAProxyN adds n baseline instances.
func (c *Cluster) AddHAProxyN(n int, cfg haproxy.Config) {
	for i := 0; i < n; i++ {
		c.AddHAProxy(cfg)
	}
}

// AddBackend starts a backend web server serving the given objects and
// registers it under name.
func (c *Cluster) AddBackend(name string, objects map[string][]byte, cfg httpsim.ServerConfig) *Backend {
	c.nextBackend++
	if c.Hybrid != nil {
		// Deterministic backend ISNs let a recovering instance rebuild the
		// Delta translation without reading the record back.
		cfg.TCP.ISNKey = c.Hybrid.ISNKey()
	}
	h := netsim.NewHost(c.netFor(c.nextBackend-1), netsim.IPv4(10, 0, backendSubnet, byte(c.nextBackend)))
	srv := httpsim.NewServer(h, 80, httpsim.MapHandler(objects), cfg)
	b := &Backend{
		Name:   name,
		Server: srv,
		Rec:    rules.Backend{Name: name, Addr: netsim.HostPort{IP: h.IP(), Port: 80}},
	}
	c.Backends[name] = b
	return b
}

// AddVIP allocates a VIP for a named service and announces it at the L4
// LB.
func (c *Cluster) AddVIP(service string) netsim.IP {
	c.nextVIP++
	vip := vipIP(c.nextVIP)
	c.VIPs[service] = vip
	c.L4.AddVIP(vip)
	return vip
}

// Resolver returns a rules.Resolver over the cluster's backends.
func (c *Cluster) Resolver() rules.Resolver {
	return func(name string) (rules.Backend, bool) {
		b, ok := c.Backends[name]
		if !ok {
			return rules.Backend{}, false
		}
		return b.Rec, true
	}
}

// InstallPolicy installs a rule set for a VIP on the given Yoda instances
// (nil means all) and maps the VIP to them at the L4 LB.
func (c *Cluster) InstallPolicy(vip netsim.IP, rs []rules.Rule, insts []*core.Instance) {
	if insts == nil {
		insts = c.Yoda
	}
	var ips []netsim.IP
	for _, in := range insts {
		in.InstallRules(vip, rs)
		ips = append(ips, in.IP())
	}
	c.L4.SetMappingNow(vip, ips)
	c.HybridRecordPolicy(vip, rs)
}

// InstallPolicyHAProxy mirrors InstallPolicy for the baseline.
func (c *Cluster) InstallPolicyHAProxy(vip netsim.IP, rs []rules.Rule, insts []*haproxy.Instance) {
	if insts == nil {
		insts = c.HAProxy
	}
	var ips []netsim.IP
	for _, in := range insts {
		in.InstallRules(vip, rs)
		ips = append(ips, in.IP())
	}
	c.L4.SetMappingNow(vip, ips)
}

// NewClient creates an Internet client host with the given HTTP client
// configuration.
func (c *Cluster) NewClient(cfg httpsim.ClientConfig) *httpsim.Client {
	c.nextClient++
	ip := netsim.IPv4(100, byte(c.nextClient>>8), byte(c.nextClient), 1)
	h := netsim.NewHost(c.netFor(c.nextClient-1), ip)
	return httpsim.NewClient(h, cfg)
}

// ClientHost creates a bare Internet client host (for raw TCP drivers).
func (c *Cluster) ClientHost() *netsim.Host {
	c.nextClient++
	ip := netsim.IPv4(100, byte(c.nextClient>>8), byte(c.nextClient), 1)
	return netsim.NewHost(c.netFor(c.nextClient-1), ip)
}

// KillYoda fails instance i (detach + L4 withdrawal is the controller's
// job; tests without a controller can call RemoveInstance directly).
func (c *Cluster) KillYoda(i int) *core.Instance {
	inst := c.Yoda[i]
	inst.Fail()
	if c.Hybrid != nil {
		// Death deliberately does NOT bump the epoch: the dead instance's
		// unpersisted flows must stay derivable under the entry they were
		// established under.
		c.Hybrid.MarkDead(inst.IP())
	}
	return inst
}

// SimpleSplitRules builds an equal-weight split rule over the named
// backends — the workhorse policy for the testbed services.
func (c *Cluster) SimpleSplitRules(backendNames ...string) []rules.Rule {
	split := make([]rules.WeightedBackend, 0, len(backendNames))
	for _, n := range backendNames {
		b, ok := c.Backends[n]
		if !ok {
			panic(fmt.Sprintf("cluster: unknown backend %q", n))
		}
		split = append(split, rules.WeightedBackend{Backend: b.Rec, Weight: 1})
	}
	return []rules.Rule{{
		Name:     "split-all",
		Priority: 1,
		Match:    rules.Match{URLGlob: "*"},
		Action:   rules.Action{Type: rules.ActionSplit, Split: split},
	}}
}
