package cluster_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/haproxy"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
)

func TestAddressPlanIsCollisionFree(t *testing.T) {
	c := cluster.New(1)
	seen := map[netsim.IP]string{}
	record := func(ip netsim.IP, kind string) {
		if prev, ok := seen[ip]; ok {
			t.Fatalf("IP %v assigned to both %s and %s", ip, prev, kind)
		}
		seen[ip] = kind
	}
	c.AddStoreServers(5, memcache.DefaultSimServerConfig())
	for _, s := range c.StoreServers {
		record(s.Host().IP(), "store")
	}
	c.AddYodaN(5, core.DefaultConfig(), tcpstore.DefaultConfig())
	for _, in := range c.Yoda {
		record(in.IP(), "yoda")
	}
	c.AddHAProxyN(3, haproxy.DefaultConfig())
	for _, p := range c.HAProxy {
		record(p.IP(), "haproxy")
	}
	for i := 0; i < 5; i++ {
		b := c.AddBackend(string(rune('a'+i)), nil, httpsim.DefaultServerConfig())
		record(b.Rec.Addr.IP, "backend")
	}
	record(c.AddVIP("s1"), "vip")
	record(c.AddVIP("s2"), "vip")
}

func TestSNATRangesArePartitioned(t *testing.T) {
	c := cluster.New(2)
	c.AddStoreServers(1, memcache.DefaultSimServerConfig())
	cfg := core.DefaultConfig()
	c.AddYodaN(4, cfg, tcpstore.DefaultConfig())
	// Ranges are assigned by the cluster; verify by driving concurrent
	// flows through all instances toward the same backend and checking the
	// backend never sees a tuple collision (which would corrupt a
	// connection). An indirect but end-to-end check: all fetches succeed.
	c.AddBackend("srv", map[string][]byte{"/x": []byte("y")}, httpsim.DefaultServerConfig())
	vip := c.AddVIP("svc")
	c.InstallPolicy(vip, c.SimpleSplitRules("srv"), nil)
	done, errs := 0, 0
	for i := 0; i < 40; i++ {
		cl := c.NewClient(httpsim.DefaultClientConfig())
		cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/x", func(r *httpsim.FetchResult) {
			done++
			if r.Err != nil {
				errs++
			}
		})
	}
	c.Net.RunFor(30 * time.Second)
	if done != 40 || errs != 0 {
		t.Fatalf("done=%d errs=%d", done, errs)
	}
}

func TestResolver(t *testing.T) {
	c := cluster.New(3)
	c.AddBackend("known", nil, httpsim.DefaultServerConfig())
	r := c.Resolver()
	if b, ok := r("known"); !ok || b.Name != "known" {
		t.Fatalf("resolve known: %v %v", b, ok)
	}
	if _, ok := r("unknown"); ok {
		t.Fatal("resolved unknown backend")
	}
}

func TestSimpleSplitRulesPanicsOnUnknown(t *testing.T) {
	c := cluster.New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown backend")
		}
	}()
	c.SimpleSplitRules("ghost")
}

func TestInstallPolicySubset(t *testing.T) {
	c := cluster.New(5)
	c.AddStoreServers(1, memcache.DefaultSimServerConfig())
	c.AddYodaN(3, core.DefaultConfig(), tcpstore.DefaultConfig())
	c.AddBackend("srv", map[string][]byte{"/": []byte("ok")}, httpsim.DefaultServerConfig())
	vip := c.AddVIP("svc")
	subset := c.Yoda[:2]
	c.InstallPolicy(vip, c.SimpleSplitRules("srv"), subset)
	if !c.Yoda[0].HasVIP(vip) || !c.Yoda[1].HasVIP(vip) {
		t.Fatal("subset instances missing rules")
	}
	if c.Yoda[2].HasVIP(vip) {
		t.Fatal("non-assigned instance has rules")
	}
	if got := len(c.L4.Mapping(vip)); got != 2 {
		t.Fatalf("L4 mapping size = %d, want 2", got)
	}
}

func TestKillYoda(t *testing.T) {
	c := cluster.New(6)
	c.AddStoreServers(1, memcache.DefaultSimServerConfig())
	c.AddYodaN(2, core.DefaultConfig(), tcpstore.DefaultConfig())
	inst := c.KillYoda(0)
	if inst.Host().Alive() {
		t.Fatal("killed instance still alive")
	}
	if !c.Yoda[1].Host().Alive() {
		t.Fatal("wrong instance killed")
	}
}

func TestClientsGetDistinctIPs(t *testing.T) {
	c := cluster.New(7)
	seen := map[netsim.IP]bool{}
	for i := 0; i < 300; i++ {
		h := c.ClientHost()
		if seen[h.IP()] {
			t.Fatalf("client IP %v reused", h.IP())
		}
		seen[h.IP()] = true
	}
}
