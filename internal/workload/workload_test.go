package workload

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/httpsim"
)

func TestGenerateCorpusShape(t *testing.T) {
	c := GenerateCorpus(DefaultCorpusConfig())
	nonHTML := 0
	for path, size := range c.Sizes {
		if size < sizeMin || size > sizeMax {
			t.Fatalf("object %s size %d outside [1KB, 442KB]", path, size)
		}
		if !bytes.HasSuffix([]byte(path), []byte(".html")) {
			nonHTML++
		}
	}
	if nonHTML != 10000 {
		t.Fatalf("objects = %d, want 10000", nonHTML)
	}
	if len(c.Pages) == 0 {
		t.Fatal("no pages")
	}
	// Median calibrated to ~46KB (±40% tolerance for the lognormal clamp).
	med := c.MedianObjectSize()
	if med < 28*1024 || med > 64*1024 {
		t.Fatalf("median size = %d, want ~46KB", med)
	}
	// Every page's objects exist in the size map.
	for _, p := range c.Pages {
		if _, ok := c.Sizes[p.HTML]; !ok {
			t.Fatalf("page HTML %s missing", p.HTML)
		}
		for _, o := range p.Objects {
			if _, ok := c.Sizes[o]; !ok {
				t.Fatalf("object %s missing", o)
			}
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(DefaultCorpusConfig())
	b := GenerateCorpus(DefaultCorpusConfig())
	if len(a.Sizes) != len(b.Sizes) {
		t.Fatal("corpora differ in size")
	}
	for p, s := range a.Sizes {
		if b.Sizes[p] != s {
			t.Fatalf("object %s differs", p)
		}
	}
}

func TestSynthBodyDeterministic(t *testing.T) {
	a := SynthBody("/site/obj1.jpg", 1000)
	b := SynthBody("/site/obj1.jpg", 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("body not deterministic")
	}
	c := SynthBody("/site/obj2.jpg", 1000)
	if bytes.Equal(a, c) {
		t.Fatal("different paths produced identical bodies")
	}
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
}

func TestHandlerServesCorpus(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Objects = 50
	c := GenerateCorpus(cfg)
	h := c.Handler()
	page := c.Pages[0]
	resp := h(httpsim.NewRequest(page.HTML, "site"))
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(resp.Body) != c.Sizes[page.HTML] {
		t.Fatalf("body = %d bytes, want %d", len(resp.Body), c.Sizes[page.HTML])
	}
	resp = h(httpsim.NewRequest("/nope", "site"))
	if resp.StatusCode != 404 {
		t.Fatalf("missing object status = %d", resp.StatusCode)
	}
}

func TestRandomPageAndBytes(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Objects = 100
	c := GenerateCorpus(cfg)
	rng := rand.New(rand.NewSource(1))
	p := c.RandomPage(rng)
	if p == nil || len(p.Objects) == 0 {
		t.Fatalf("page: %+v", p)
	}
	total := c.PageBytes(p)
	want := c.Sizes[p.HTML]
	for _, o := range p.Objects {
		want += c.Sizes[o]
	}
	if total != want {
		t.Fatalf("PageBytes = %d, want %d", total, want)
	}
}
