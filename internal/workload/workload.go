// Package workload generates the web corpus and request workloads of the
// paper's testbed (§7): four university-style websites totalling 10K+
// objects with sizes from 1 KB to 442 KB (median 46 KB), organized as
// pages (one HTML document plus embedded objects). Object bodies are
// synthesized on demand from their sizes so a full corpus costs a few
// hundred kilobytes of metadata rather than gigabytes of RAM.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/httpsim"
)

// Corpus is one website's object inventory.
type Corpus struct {
	// Sizes maps object path to body size in bytes.
	Sizes map[string]int
	// Pages lists the site's pages.
	Pages []Page
}

// Page is an HTML document plus its embedded objects.
type Page struct {
	HTML    string
	Objects []string
}

// CorpusConfig parameterizes generation.
type CorpusConfig struct {
	Seed    int64
	Objects int // total objects, e.g. 10000
	// Pages derive from Objects: each page owns MeanObjectsPerPage
	// embedded objects on average.
	MeanObjectsPerPage int
	// Prefix namespaces paths, letting multiple sites share a backend.
	Prefix string
}

// DefaultCorpusConfig matches the §7 corpus.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{Seed: 1, Objects: 10000, MeanObjectsPerPage: 10, Prefix: "/site"}
}

// Size distribution calibration: log-normal with median 46 KB whose
// 1 KB–442 KB span covers ±~2.4σ (matching the paper's reported corpus).
const (
	sizeMedian = 46 * 1024
	sizeSigma  = 1.15
	sizeMin    = 1 * 1024
	sizeMax    = 442 * 1024
)

// GenerateCorpus builds a deterministic corpus.
func GenerateCorpus(cfg CorpusConfig) *Corpus {
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{Sizes: make(map[string]int, cfg.Objects)}
	mu := math.Log(sizeMedian)
	objID := 0
	for objID < cfg.Objects {
		pageIdx := len(c.Pages)
		nObj := 1 + rng.Intn(2*cfg.MeanObjectsPerPage-1) // uniform, mean ≈ MeanObjectsPerPage
		if objID+nObj > cfg.Objects {
			nObj = cfg.Objects - objID
		}
		html := fmt.Sprintf("%s/page%d.html", cfg.Prefix, pageIdx)
		c.Sizes[html] = clampSize(int(math.Exp(mu+sizeSigma*rng.NormFloat64()) / 4))
		page := Page{HTML: html}
		for k := 0; k < nObj; k++ {
			ext := []string{"jpg", "css", "js", "png"}[rng.Intn(4)]
			path := fmt.Sprintf("%s/obj%d.%s", cfg.Prefix, objID, ext)
			c.Sizes[path] = clampSize(int(math.Exp(mu + sizeSigma*rng.NormFloat64())))
			page.Objects = append(page.Objects, path)
			objID++
		}
		c.Pages = append(c.Pages, page)
	}
	return c
}

func clampSize(s int) int {
	if s < sizeMin {
		return sizeMin
	}
	if s > sizeMax {
		return sizeMax
	}
	return s
}

// MedianObjectSize returns the corpus's median object size.
func (c *Corpus) MedianObjectSize() int {
	sizes := make([]int, 0, len(c.Sizes))
	for _, s := range c.Sizes {
		sizes = append(sizes, s)
	}
	if len(sizes) == 0 {
		return 0
	}
	sort.Ints(sizes)
	return sizes[len(sizes)/2]
}

// Handler serves the corpus: object bodies are synthesized per request
// from the recorded sizes, with deterministic content so integrity can be
// checked end to end.
func (c *Corpus) Handler() httpsim.Handler {
	return func(req *httpsim.Request) *httpsim.Response {
		size, ok := c.Sizes[req.Path]
		if !ok {
			return httpsim.NewResponse(404, []byte("no such object: "+req.Path))
		}
		return httpsim.NewResponse(200, SynthBody(req.Path, size))
	}
}

// SynthBody deterministically synthesizes an object body from its path
// and size.
func SynthBody(path string, size int) []byte {
	b := make([]byte, size)
	seed := 0
	for _, ch := range []byte(path) {
		seed = seed*131 + int(ch)
	}
	for i := range b {
		b[i] = byte(seed + i*7)
	}
	return b
}

// RandomPage picks a page uniformly.
func (c *Corpus) RandomPage(rng *rand.Rand) *Page {
	return &c.Pages[rng.Intn(len(c.Pages))]
}

// PageBytes returns the total transfer size of a page.
func (c *Corpus) PageBytes(p *Page) int {
	total := c.Sizes[p.HTML]
	for _, o := range p.Objects {
		total += c.Sizes[o]
	}
	return total
}
