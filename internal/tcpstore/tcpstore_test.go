package tcpstore

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

func mkServers(n int) []netsim.HostPort {
	out := make([]netsim.HostPort, n)
	for i := range out {
		out[i] = netsim.HostPort{IP: netsim.IPv4(10, 0, 3, byte(i+1)), Port: memcache.DefaultPort}
	}
	return out
}

func TestRingPickDistinctReplicas(t *testing.T) {
	r := NewRing(mkServers(10))
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("flow:%d", i)
		picks := r.Pick(key, 3)
		if len(picks) != 3 {
			t.Fatalf("picked %d servers", len(picks))
		}
		seen := map[netsim.HostPort]bool{}
		for _, p := range picks {
			if seen[p] {
				t.Fatalf("duplicate replica for %s: %v", key, picks)
			}
			seen[p] = true
		}
	}
}

func TestRingPickDeterministic(t *testing.T) {
	servers := mkServers(10)
	a, b := NewRing(servers), NewRing(servers)
	f := func(key string) bool {
		pa, pb := a.Pick(key, 2), b.Pick(key, 2)
		if len(pa) != len(pb) {
			return false
		}
		for i := range pa {
			if pa[i] != pb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRingKExceedsServers(t *testing.T) {
	r := NewRing(mkServers(2))
	picks := r.Pick("key", 5)
	if len(picks) != 2 {
		t.Fatalf("picked %d, want all 2", len(picks))
	}
}

func TestRingEmptyAndZeroK(t *testing.T) {
	r := NewRing(nil)
	if r.Pick("k", 2) != nil {
		t.Fatal("pick on empty ring")
	}
	r = NewRing(mkServers(3))
	if r.Pick("k", 0) != nil {
		t.Fatal("pick with k=0")
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(mkServers(10))
	counts := map[netsim.HostPort]int{}
	const N = 20000
	for i := 0; i < N; i++ {
		for _, s := range r.Pick(fmt.Sprintf("key-%d", i), 1) {
			counts[s]++
		}
	}
	for s, c := range counts {
		frac := float64(c) / N
		if frac < 0.05 || frac > 0.16 {
			t.Errorf("server %v holds fraction %.3f, want ~0.10", s, frac)
		}
	}
}

func TestRingMonotonicity(t *testing.T) {
	// Removing one server must not move keys between surviving servers.
	servers := mkServers(10)
	full := NewRing(servers)
	reduced := NewRing(servers[:9]) // drop the last
	removed := servers[9]
	moved, stayed := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Pick(key, 1)[0]
		after := reduced.Pick(key, 1)[0]
		if before == removed {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %s moved %v -> %v though %v survived", key, before, after, before)
		}
		stayed++
	}
	if moved == 0 || stayed == 0 {
		t.Fatalf("degenerate test: moved=%d stayed=%d", moved, stayed)
	}
}

// --- store over simulated servers ---

type simWorld struct {
	net     *netsim.Network
	servers []*memcache.SimServer
	store   *Store
}

func newSimWorld(seed int64, nServers int, cfg Config) *simWorld {
	n := netsim.New(seed)
	w := &simWorld{net: n}
	var hps []netsim.HostPort
	for i := 0; i < nServers; i++ {
		h := netsim.NewHost(n, netsim.IPv4(10, 0, 3, byte(i+1)))
		srv := memcache.NewSimServer(h, memcache.DefaultPort, memcache.DefaultSimServerConfig())
		w.servers = append(w.servers, srv)
		hps = append(hps, netsim.HostPort{IP: h.IP(), Port: memcache.DefaultPort})
	}
	lbHost := netsim.NewHost(n, netsim.IPv4(10, 0, 1, 1))
	w.store = New(lbHost, hps, cfg)
	return w
}

func TestStoreSetGetDelete(t *testing.T) {
	w := newSimWorld(1, 4, DefaultConfig())
	var setErr error = fmt.Errorf("unset")
	w.store.Set([]byte("flow:abc"), []byte("tcp-state"), func(err error) { setErr = err })
	w.net.RunUntilIdle(100000)
	if setErr != nil {
		t.Fatalf("set: %v", setErr)
	}
	var got []byte
	var ok bool
	w.store.Get([]byte("flow:abc"), func(v []byte, o bool, err error) { got, ok = v, o })
	w.net.RunUntilIdle(100000)
	if !ok || string(got) != "tcp-state" {
		t.Fatalf("get: %q ok=%v", got, ok)
	}
	delDone := false
	w.store.Delete([]byte("flow:abc"), func(err error) { delDone = err == nil })
	w.net.RunUntilIdle(100000)
	if !delDone {
		t.Fatal("delete failed")
	}
	miss := true
	w.store.Get([]byte("flow:abc"), func(v []byte, o bool, err error) { miss = !o })
	w.net.RunUntilIdle(100000)
	if !miss {
		t.Fatal("get after delete hit")
	}
}

func TestStoreReplicatesToKServers(t *testing.T) {
	w := newSimWorld(2, 5, DefaultConfig()) // K=2
	w.store.Set([]byte("key-r"), []byte("v"), func(error) {})
	w.net.RunUntilIdle(100000)
	holders := 0
	for _, srv := range w.servers {
		if _, ok := srv.Engine.Get("key-r"); ok {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("key on %d servers, want 2", holders)
	}
}

func TestStoreSurvivesOneReplicaFailure(t *testing.T) {
	w := newSimWorld(3, 4, DefaultConfig())
	ok := false
	w.store.Set([]byte("flow:x"), []byte("state"), func(err error) { ok = err == nil })
	w.net.RunUntilIdle(100000)
	if !ok {
		t.Fatal("set failed")
	}
	// Kill exactly one of the two replica servers.
	replicas := w.store.ring.Pick("flow:x", 2)
	for _, srv := range w.servers {
		if srv.Host().IP() == replicas[0].IP {
			srv.Host().Detach()
		}
	}
	var got []byte
	found := false
	done := false
	w.store.Get([]byte("flow:x"), func(v []byte, o bool, err error) { got, found, done = v, o, true })
	// Allow time for the dead replica's connection to fail over.
	w.net.RunFor(10 * time.Minute)
	if !done {
		t.Fatal("get never completed")
	}
	if !found || string(got) != "state" {
		t.Fatalf("state lost after single replica failure: %q found=%v", got, found)
	}
}

func TestStoreAllReplicasDead(t *testing.T) {
	w := newSimWorld(4, 2, DefaultConfig())
	for _, srv := range w.servers {
		srv.Host().Detach()
	}
	var err error
	done := false
	w.store.Set([]byte("k"), []byte("v"), func(e error) { err, done = e, true })
	w.net.RunFor(20 * time.Minute)
	if !done {
		t.Fatal("set never resolved")
	}
	if err != ErrAllReplicasFailed {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreNoServers(t *testing.T) {
	n := netsim.New(5)
	h := netsim.NewHost(n, netsim.IPv4(10, 0, 1, 1))
	st := New(h, nil, DefaultConfig())
	var setErr, getErr error
	gotOK := true
	st.Set([]byte("k"), []byte("v"), func(e error) { setErr = e })
	st.Get([]byte("k"), func(v []byte, ok bool, e error) { gotOK, getErr = ok, e })
	if setErr != ErrAllReplicasFailed || getErr != ErrAllReplicasFailed || gotOK {
		t.Fatalf("empty store: %v %v %v", setErr, getErr, gotOK)
	}
}

func TestStoreReplica1IsPlainMemcached(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Replicas = 1
	w := newSimWorld(6, 4, cfg)
	w.store.Set([]byte("k"), []byte("v"), func(error) {})
	w.net.RunUntilIdle(100000)
	holders := 0
	for _, srv := range w.servers {
		if _, ok := srv.Engine.Get("k"); ok {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("key on %d servers, want 1", holders)
	}
}

func TestStoreParallelReplicaWritesOverlap(t *testing.T) {
	// With replication the two replica writes go out concurrently, so the
	// latency should be roughly one op RTT, not two (this is the ≤24%
	// overhead claim of Figure 10).
	runOne := func(replicas int) time.Duration {
		cfg := DefaultConfig()
		cfg.Replicas = replicas
		w := newSimWorld(7, 10, cfg)
		var lat time.Duration
		w.store.TimedSet([]byte("k"), []byte("v"), func(l time.Duration, err error) { lat = l })
		w.net.RunUntilIdle(1000000)
		return lat
	}
	lat1 := runOne(1)
	lat2 := runOne(2)
	if lat1 <= 0 || lat2 <= 0 {
		t.Fatalf("latencies not measured: %v %v", lat1, lat2)
	}
	// Allow the replicated op up to 50% overhead (paper observed <24%).
	if float64(lat2) > 1.5*float64(lat1) {
		t.Fatalf("replication not parallel: K=1 %v vs K=2 %v", lat1, lat2)
	}
}

func TestStoreSetServersClosesRemoved(t *testing.T) {
	w := newSimWorld(8, 4, DefaultConfig())
	w.store.Set([]byte("k"), []byte("v"), func(error) {})
	w.net.RunUntilIdle(100000)
	if len(w.store.conns) == 0 {
		t.Fatal("no connections opened")
	}
	// Shrink to one server.
	keep := []netsim.HostPort{{IP: w.servers[0].Host().IP(), Port: memcache.DefaultPort}}
	w.store.SetServers(keep)
	for hp := range w.store.conns {
		if hp != keep[0] {
			t.Fatalf("connection to removed server %v retained", hp)
		}
	}
	if w.store.ring.Len() != 1 {
		t.Fatalf("ring size = %d", w.store.ring.Len())
	}
}

func TestStoreStats(t *testing.T) {
	w := newSimWorld(9, 3, DefaultConfig())
	w.store.Set([]byte("a"), []byte("1"), func(error) {})
	w.net.RunUntilIdle(100000)
	w.store.Get([]byte("a"), func([]byte, bool, error) {})
	w.store.Get([]byte("missing"), func([]byte, bool, error) {})
	w.net.RunUntilIdle(100000)
	st := w.store.Stats
	if st.Sets != 1 || st.Gets != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStoreExpiryAges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Expiry = 1 // 1 second TTL
	w := newSimWorld(10, 3, cfg)
	w.store.Set([]byte("k"), []byte("v"), func(error) {})
	w.net.RunUntilIdle(100000)
	w.net.RunFor(2 * time.Second)
	found := true
	w.store.Get([]byte("k"), func(v []byte, ok bool, err error) { found = ok })
	w.net.RunUntilIdle(100000)
	if found {
		t.Fatal("entry did not expire")
	}
}

var _ = tcp.DefaultConfig // keep import if unused paths change
