package tcpstore

import (
	"testing"
)

// TestSetMultiAllocFree locks in the batched write path's alloc budget:
// with warm pools (multi-ops, batch states, pick buffers, client scratch,
// server sessions, engine nodes, event records), a storage-b shaped
// SetMulti — two entries replicated K ways, grouped per server, carried
// over simulated TCP, stored, and resolved — allocates nothing.
func TestSetMultiAllocFree(t *testing.T) {
	w := newSimWorld(21, 5, DefaultConfig()) // K=2
	value := make([]byte, 90)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	entries := []Entry{
		{Key: []byte("yoda:f:c0a80001:9c40:0a0000fe:0050"), Value: value},
		{Key: []byte("yoda:f:0a000020:1f90:0a0000fe:4e21"), Value: value},
	}
	done := false
	cb := func(SetResult) { done = true }
	op := func() {
		done = false
		w.store.SetMulti(entries, cb)
		// Drain everything, including the cancelled op-timeout and TCP
		// retransmit records, so pooled resources recycle inside the run —
		// as they do continuously in a long-running instance.
		w.net.RunUntilIdle(1 << 20)
		if !done {
			t.Fatal("SetMulti did not resolve")
		}
	}
	for i := 0; i < 64; i++ {
		op()
	}
	if allocs := testing.AllocsPerRun(100, op); allocs != 0 {
		t.Fatalf("SetMulti allocates %.1f objects/op, want 0", allocs)
	}
}
