package tcpstore

import (
	"fmt"
	"testing"

	"repro/internal/memcache"
)

// startFleet launches n real memcached-protocol servers on loopback.
func startFleet(t testing.TB, n int) ([]string, []*memcache.NetServer) {
	t.Helper()
	var addrs []string
	var srvs []*memcache.NetServer
	for i := 0; i < n; i++ {
		srv, err := memcache.ListenAndServe("127.0.0.1:0", memcache.NewEngine(0, nil))
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, srv.Addr())
		srvs = append(srvs, srv)
	}
	t.Cleanup(func() {
		for _, s := range srvs {
			s.Close()
		}
	})
	return addrs, srvs
}

func TestNetStoreSetGetDelete(t *testing.T) {
	addrs, _ := startFleet(t, 3)
	ns := NewNetStore(addrs, 2, 0)
	defer ns.Close()
	if err := ns.Set("flow:1", []byte("state")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := ns.Get("flow:1")
	if err != nil || !ok || string(v) != "state" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if err := ns.Delete("flow:1"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ns.Get("flow:1"); ok {
		t.Fatal("get after delete")
	}
}

func TestNetStoreReplicatesAcrossServers(t *testing.T) {
	addrs, srvs := startFleet(t, 4)
	ns := NewNetStore(addrs, 2, 0)
	defer ns.Close()
	for i := 0; i < 20; i++ {
		if err := ns.Set(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, s := range srvs {
		total += s.Engine.Stats().CurrItems
	}
	if total != 40 {
		t.Fatalf("replicas stored = %d, want 20 keys × 2", total)
	}
}

func TestNetStoreSurvivesReplicaFailure(t *testing.T) {
	addrs, srvs := startFleet(t, 3)
	ns := NewNetStore(addrs, 2, 0)
	defer ns.Close()
	if err := ns.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Kill the first server holding the key; the other replica answers.
	for _, s := range srvs {
		if _, ok := s.Engine.Get("k"); ok {
			s.Close()
			break
		}
	}
	ns.Close() // force reconnects so the dead server is redialed (and fails)
	ns2 := NewNetStore(addrs, 2, 0)
	defer ns2.Close()
	v, ok, err := ns2.Get("k")
	if !ok || string(v) != "v" {
		t.Fatalf("get after replica death: %q %v %v", v, ok, err)
	}
}

func TestNetStoreNoServers(t *testing.T) {
	ns := NewNetStore(nil, 2, 0)
	if err := ns.Set("k", []byte("v")); err != ErrAllReplicasFailed {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := ns.Get("k"); err != ErrAllReplicasFailed {
		t.Fatalf("err = %v", err)
	}
	if err := ns.Delete("k"); err != ErrAllReplicasFailed {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkNetStoreSetReplicated(b *testing.B) {
	addrs, _ := startFleet(b, 3)
	ns := NewNetStore(addrs, 2, 0)
	defer ns.Close()
	value := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ns.Set(fmt.Sprintf("flow:%d", i%1000), value); err != nil {
			b.Fatal(err)
		}
	}
}
