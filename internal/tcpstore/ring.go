// Package tcpstore implements Yoda's TCPStore (§4.3, §6): a persistent
// in-memory store for decoupled TCP flow state, built as a client-side
// replication layer over unmodified Memcached servers. For every
// operation the client picks K replica servers among the N available
// using K independent hash functions over a consistent-hash ring, issues
// the operation to all replicas concurrently, and keeps long-lived
// connections to the servers — the three latency optimizations the paper
// lists.
package tcpstore

import (
	"hash/fnv"
	"sort"

	"repro/internal/netsim"
)

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash   uint64
	server int // index into the server list
}

// Ring is a consistent-hash ring with virtual nodes. Replica i of a key
// is located by hashing the key with salt i and walking the ring to the
// first point owned by a server not already chosen for replicas < i.
type Ring struct {
	points  []ringPoint
	servers []netsim.HostPort
	// used is PickInto's distinct-server scratch, reused per call (the
	// ring is only driven from the instance's single-threaded event loop).
	used []bool
}

// VirtualNodes is the number of ring points per server. More points give
// smoother balance; 128 keeps the max/mean ratio near 1.15 for 10 servers.
const VirtualNodes = 128

// NewRing builds a ring over the given servers.
func NewRing(servers []netsim.HostPort) *Ring {
	r := &Ring{servers: append([]netsim.HostPort(nil), servers...)}
	for i, s := range r.servers {
		for v := 0; v < VirtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   pointHash(s, v),
				server: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// Servers returns the server list backing the ring.
func (r *Ring) Servers() []netsim.HostPort { return r.servers }

// Len returns the number of servers.
func (r *Ring) Len() int { return len(r.servers) }

// Pick returns the servers for the K replicas of key. It guarantees the
// replicas are distinct servers as long as K ≤ Len(); if K exceeds the
// server count every server is returned once.
func (r *Ring) Pick(key string, k int) []netsim.HostPort {
	var kb [64]byte
	if len(key) <= len(kb) {
		return r.PickInto(nil, kb[:copy(kb[:], key)], k)
	}
	return r.PickInto(nil, []byte(key), k)
}

// PickInto is Pick for byte keys, appending the chosen servers to dst
// (usually caller-owned scratch) instead of allocating. The selection is
// identical to Pick's: replica i hashes the key with salt i and walks the
// ring to the first point owned by a server not already chosen.
func (r *Ring) PickInto(dst []netsim.HostPort, key []byte, k int) []netsim.HostPort {
	if len(r.servers) == 0 || k <= 0 {
		return dst
	}
	if k > len(r.servers) {
		k = len(r.servers)
	}
	base := len(dst)
	if r.used == nil || cap(r.used) < len(r.servers) {
		r.used = make([]bool, len(r.servers))
	}
	used := r.used[:len(r.servers)]
	for i := range used {
		used[i] = false
	}
	for replica := 0; len(dst)-base < k; replica++ {
		h := keyHash(key, replica)
		idx := r.search(h)
		// Walk forward past already-used servers.
		for tries := 0; tries < len(r.points); tries++ {
			p := r.points[(idx+tries)%len(r.points)]
			if !used[p.server] {
				used[p.server] = true
				dst = append(dst, r.servers[p.server])
				break
			}
		}
	}
	return dst
}

// search returns the index of the first ring point with hash >= h,
// wrapping to 0.
func (r *Ring) search(h uint64) int {
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		return 0
	}
	return idx
}

func pointHash(s netsim.HostPort, v int) uint64 {
	h := fnv.New64a()
	var b [10]byte
	ip := uint32(s.IP)
	b[0], b[1], b[2], b[3] = byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip)
	b[4], b[5] = byte(s.Port>>8), byte(s.Port)
	b[6], b[7], b[8], b[9] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
	h.Write(b[:])
	return mix64(h.Sum64())
}

// keyHash is FNV-1a over key then the 4 salt bytes, inlined so the hot
// path does not allocate a hash.Hash64 (hash/fnv returns an interface).
// It must stay bit-identical to fnv.New64a over the same bytes: replica
// placement feeds the deterministic traffic traces.
func keyHash(key []byte, replica int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range key {
		h ^= uint64(c)
		h *= prime64
	}
	h ^= uint64(byte(replica >> 24))
	h *= prime64
	h ^= uint64(byte(replica >> 16))
	h *= prime64
	h ^= uint64(byte(replica >> 8))
	h *= prime64
	h ^= uint64(byte(replica))
	h *= prime64
	return mix64(h)
}

// mix64 is the splitmix64 finalizer, spreading small input differences.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
