package tcpstore

import (
	"sync"
	"time"

	"repro/internal/memcache"
	"repro/internal/netsim"
)

// NetStore is TCPStore over real sockets: the same K-replica consistent-
// hashing layout as Store, but issuing operations to real memcached-
// protocol servers (this repository's memcache.NetServer or a stock
// memcached) with goroutine-level parallelism standing in for the
// simulator's virtual concurrency. It exists to demonstrate the client
// design outside the simulator and to back the real-TCP benchmarks.
type NetStore struct {
	mu       sync.Mutex
	ring     *Ring
	replicas int
	expiry   int
	conns    map[netsim.HostPort]*memcache.NetClient
	addrs    map[netsim.HostPort]string
	timeout  time.Duration
}

// NewNetStore builds a store over real server addresses ("host:port").
// Ring positions must be stable identifiers, so each address is assigned
// a synthetic HostPort key in insertion order.
func NewNetStore(addrs []string, replicas int, expirySeconds int) *NetStore {
	if replicas <= 0 {
		replicas = 1
	}
	ns := &NetStore{
		replicas: replicas,
		expiry:   expirySeconds,
		conns:    make(map[netsim.HostPort]*memcache.NetClient),
		addrs:    make(map[netsim.HostPort]string),
		timeout:  2 * time.Second,
	}
	keys := make([]netsim.HostPort, 0, len(addrs))
	for i, a := range addrs {
		key := netsim.HostPort{IP: netsim.IPv4(10, 0, 3, byte(i+1)), Port: uint16(11211)}
		ns.addrs[key] = a
		keys = append(keys, key)
	}
	ns.ring = NewRing(keys)
	return ns
}

// Close tears down every connection.
func (ns *NetStore) Close() {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	for _, c := range ns.conns {
		c.Close()
	}
	ns.conns = map[netsim.HostPort]*memcache.NetClient{}
}

func (ns *NetStore) conn(key netsim.HostPort) (*memcache.NetClient, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if c, ok := ns.conns[key]; ok {
		return c, nil
	}
	c, err := memcache.DialNet(ns.addrs[key], ns.timeout)
	if err != nil {
		return nil, err
	}
	ns.conns[key] = c
	return c, nil
}

// Set writes value to all K replicas in parallel and returns nil if at
// least one replica stored it (matching Store's recoverability
// semantics).
func (ns *NetStore) Set(key string, value []byte) error {
	replicas := ns.ring.Pick(key, ns.replicas)
	if len(replicas) == 0 {
		return ErrAllReplicasFailed
	}
	errs := make(chan error, len(replicas))
	for _, r := range replicas {
		r := r
		go func() {
			c, err := ns.conn(r)
			if err != nil {
				errs <- err
				return
			}
			errs <- c.Set(key, value, 0, ns.expiry)
		}()
	}
	ok := 0
	var last error
	for range replicas {
		if err := <-errs; err != nil {
			last = err
		} else {
			ok++
		}
	}
	if ok == 0 {
		if last != nil {
			return last
		}
		return ErrAllReplicasFailed
	}
	return nil
}

// SetMulti writes every entry to its K replicas using one batched mset
// round trip per server (the real-socket analogue of Store.SetMulti).
// It returns nil when every entry reached at least one replica.
func (ns *NetStore) SetMulti(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	type batch struct {
		server netsim.HostPort
		items  []memcache.Item
		idxs   []int
	}
	var batches []*batch
	byServer := make(map[netsim.HostPort]*batch, ns.replicas)
	acks := make([]int, len(entries))
	for i, e := range entries {
		replicas := ns.ring.Pick(string(e.Key), ns.replicas)
		for _, server := range replicas {
			b, ok := byServer[server]
			if !ok {
				b = &batch{server: server}
				byServer[server] = b
				batches = append(batches, b)
			}
			b.items = append(b.items, memcache.Item{Key: string(e.Key), Value: e.Value})
			b.idxs = append(b.idxs, i)
		}
	}
	if len(batches) == 0 {
		return ErrAllReplicasFailed
	}
	type outcome struct {
		b      *batch
		stored int
	}
	out := make(chan outcome, len(batches))
	for _, b := range batches {
		b := b
		go func() {
			c, err := ns.conn(b.server)
			if err != nil {
				out <- outcome{b: b}
				return
			}
			if len(b.items) == 1 {
				if serr := c.Set(b.items[0].Key, b.items[0].Value, 0, ns.expiry); serr == nil {
					out <- outcome{b: b, stored: 1}
				} else {
					out <- outcome{b: b}
				}
				return
			}
			n, merr := c.SetMulti(b.items, ns.expiry)
			if merr != nil {
				n = 0
			}
			out <- outcome{b: b, stored: n}
		}()
	}
	for range batches {
		o := <-out
		for j, idx := range o.b.idxs {
			if j < o.stored {
				acks[idx]++
			}
		}
	}
	for i := range entries {
		if acks[i] == 0 {
			return ErrAllReplicasFailed
		}
	}
	return nil
}

// Get reads from all replicas in parallel; the first hit wins.
func (ns *NetStore) Get(key string) ([]byte, bool, error) {
	replicas := ns.ring.Pick(key, ns.replicas)
	if len(replicas) == 0 {
		return nil, false, ErrAllReplicasFailed
	}
	type res struct {
		val []byte
		ok  bool
		err error
	}
	out := make(chan res, len(replicas))
	for _, r := range replicas {
		r := r
		go func() {
			c, err := ns.conn(r)
			if err != nil {
				out <- res{err: err}
				return
			}
			it, ok, err := c.Get(key)
			out <- res{val: it.Value, ok: ok, err: err}
		}()
	}
	errs := 0
	var lastErr error
	for range replicas {
		r := <-out
		if r.ok {
			return r.val, true, nil
		}
		if r.err != nil {
			errs++
			lastErr = r.err
		}
	}
	if errs == len(replicas) {
		return nil, false, lastErr
	}
	return nil, false, nil
}

// Delete removes key from all replicas.
func (ns *NetStore) Delete(key string) error {
	replicas := ns.ring.Pick(key, ns.replicas)
	if len(replicas) == 0 {
		return ErrAllReplicasFailed
	}
	errs := make(chan error, len(replicas))
	for _, r := range replicas {
		r := r
		go func() {
			c, err := ns.conn(r)
			if err != nil {
				errs <- err
				return
			}
			_, err = c.Delete(key)
			errs <- err
		}()
	}
	ok := 0
	var last error
	for range replicas {
		if err := <-errs; err != nil {
			last = err
		} else {
			ok++
		}
	}
	if ok == 0 {
		return last
	}
	return nil
}
