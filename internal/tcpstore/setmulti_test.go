package tcpstore

import (
	"fmt"
	"testing"
	"time"
)

// storage-b shaped batch: the same record under both tuple orientations.
func twoEntries(i int) []Entry {
	v := []byte("flow-record")
	return []Entry{
		{Key: []byte(fmt.Sprintf("flow:c%d", i)), Value: v},
		{Key: []byte(fmt.Sprintf("flow:s%d", i)), Value: v},
	}
}

func TestSetMultiReplicatesEveryEntry(t *testing.T) {
	w := newSimWorld(21, 5, DefaultConfig()) // K=2
	var res SetResult
	done := false
	w.store.SetMulti(twoEntries(0), func(r SetResult) { res, done = r, true })
	w.net.RunUntilIdle(100000)
	if !done || res.Err != nil {
		t.Fatalf("SetMulti: done=%v res=%+v", done, res)
	}
	if res.Acked != 4 || res.Failed != 0 {
		t.Fatalf("acked=%d failed=%d, want 4/0 (2 entries × K=2)", res.Acked, res.Failed)
	}
	for _, e := range twoEntries(0) {
		holders := 0
		for _, srv := range w.servers {
			if _, ok := srv.Engine.Get(string(e.Key)); ok {
				holders++
			}
		}
		if holders != 2 {
			t.Fatalf("%s on %d servers, want 2", e.Key, holders)
		}
	}
	if w.store.Stats.BatchSets != 1 || w.store.Stats.BatchRecords != 2 {
		t.Fatalf("stats: %+v", w.store.Stats)
	}
}

func TestSetMultiOneBatchPerServer(t *testing.T) {
	// With 2 servers and K=2, both entries replicate to both servers: the
	// operation must reach each server as ONE mset carrying both records,
	// not two sets — the wire-level point of batching.
	w := newSimWorld(22, 2, DefaultConfig())
	done := false
	w.store.SetMulti(twoEntries(1), func(SetResult) { done = true })
	w.net.RunUntilIdle(100000)
	if !done {
		t.Fatal("SetMulti never resolved")
	}
	for _, srv := range w.servers {
		// An mset of n charges n ops (round trips are saved, not server
		// work), so per-record accounting is preserved.
		if srv.Ops != 2 {
			t.Fatalf("server ops = %d, want 2", srv.Ops)
		}
		for _, e := range twoEntries(1) {
			if _, ok := srv.Engine.Get(string(e.Key)); !ok {
				t.Fatalf("%s missing on a replica", e.Key)
			}
		}
	}
}

func TestSetMultiPartialFailureMarksUnrecoverableEntry(t *testing.T) {
	w := newSimWorld(23, 6, DefaultConfig())
	entries := twoEntries(2)
	// Kill both replicas of entry 0; keep entry 1's replicas alive (skip
	// the seed if the replica sets overlap).
	dead := map[string]bool{}
	for _, hp := range w.store.ring.Pick(string(entries[0].Key), 2) {
		dead[hp.String()] = true
	}
	for _, hp := range w.store.ring.Pick(string(entries[1].Key), 2) {
		if dead[hp.String()] {
			t.Skip("replica sets overlap for this seed")
		}
	}
	for _, hp := range w.store.ring.Pick(string(entries[0].Key), 2) {
		for _, srv := range w.servers {
			if srv.Host().IP() == hp.IP {
				srv.Host().Detach()
			}
		}
	}
	var res SetResult
	done := false
	w.store.SetMulti(entries, func(r SetResult) { res, done = r, true })
	w.net.RunFor(10 * time.Second)
	if !done {
		t.Fatal("SetMulti never resolved")
	}
	if res.Err != ErrAllReplicasFailed {
		t.Fatalf("err = %v, want ErrAllReplicasFailed (entry 0 on zero replicas)", res.Err)
	}
	if res.Acked < 2 {
		t.Fatalf("acked = %d, want entry 1's 2 replicas", res.Acked)
	}
}

func TestSetMultiAllDeadResolvesAtOpTimeout(t *testing.T) {
	w := newSimWorld(24, 2, DefaultConfig())
	for _, srv := range w.servers {
		srv.Host().Detach()
	}
	var res SetResult
	done := false
	start := w.net.Now()
	w.store.SetMulti(twoEntries(3), func(r SetResult) { res, done = r, true })
	w.net.RunFor(20 * time.Minute)
	if !done {
		t.Fatal("SetMulti never resolved")
	}
	if res.Err != ErrAllReplicasFailed || !res.TimedOut {
		t.Fatalf("res = %+v, want timeout with all replicas failed", res)
	}
	if elapsed := w.net.Now() - start; elapsed > 20*time.Minute {
		t.Fatalf("resolved after %v", elapsed)
	}
}

func TestSetMultiEmpty(t *testing.T) {
	w := newSimWorld(25, 2, DefaultConfig())
	done := false
	w.store.SetMulti(nil, func(r SetResult) { done = r.Err == nil })
	if !done {
		t.Fatal("empty SetMulti must resolve synchronously with no error")
	}
}

// --- batched vs sequential storage-b benchmark ---

// benchStorageB drives storage-b shaped double-writes through the
// simulator and reports achieved virtual latency per write: batched
// issues one SetMulti (one round trip per replica server), sequential
// issues the seed's two independent Sets.
func benchStorageB(b *testing.B, batched bool) {
	w := newSimWorld(7, 3, DefaultConfig())
	// Warm the per-server connections so dial handshakes don't skew op 0.
	warm := false
	w.store.Set([]byte("warm"), []byte("x"), func(error) { warm = true })
	w.net.RunUntilIdle(100000)
	if !warm {
		b.Fatal("warmup write failed")
	}
	b.ResetTimer()
	virtStart := w.net.Now()
	roundTrips := 0
	for i := 0; i < b.N; i++ {
		entries := twoEntries(i)
		// Wire cost: batched sends one request per distinct replica
		// server; sequential sends one per key per replica.
		if batched {
			distinct := map[string]bool{}
			for _, e := range entries {
				for _, hp := range w.store.ring.Pick(string(e.Key), w.store.cfg.Replicas) {
					distinct[hp.String()] = true
				}
			}
			roundTrips += len(distinct)
		} else {
			for _, e := range entries {
				roundTrips += len(w.store.ring.Pick(string(e.Key), w.store.cfg.Replicas))
			}
		}
		done := false
		if batched {
			w.store.SetMulti(entries, func(SetResult) { done = true })
		} else {
			remaining := 2
			cb := func(error) {
				remaining--
				if remaining == 0 {
					done = true
				}
			}
			w.store.Set(entries[0].Key, entries[0].Value, cb)
			w.store.Set(entries[1].Key, entries[1].Value, cb)
		}
		w.net.RunUntilIdle(1 << 20)
		if !done {
			b.Fatal("write did not resolve")
		}
	}
	b.ReportMetric(float64((w.net.Now()-virtStart).Microseconds())/float64(b.N), "virtual-µs/write")
	b.ReportMetric(float64(roundTrips)/float64(b.N), "roundtrips/write")
}

func BenchmarkStorageBBatched(b *testing.B)    { benchStorageB(b, true) }
func BenchmarkStorageBSequential(b *testing.B) { benchStorageB(b, false) }
