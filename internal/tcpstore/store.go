package tcpstore

import (
	"errors"
	"sort"
	"time"

	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

// ErrAllReplicasFailed is reported when no replica server accepted an
// operation.
var ErrAllReplicasFailed = errors.New("tcpstore: all replicas failed")

// Config tunes a TCPStore client.
type Config struct {
	// Replicas is K, the number of Memcached servers each key is stored
	// on. The paper's persistence experiments use 2; 1 degenerates to
	// plain Memcached (the Figure 10/11 baseline).
	Replicas int
	// WriteConcern is how many replica ACKs a Set waits for before
	// reporting success. 0 means all replicas. The paper ACKs the client
	// only after the state is persisted, so the default waits for all.
	WriteConcern int
	// Expiry is the TTL in seconds attached to flow-state entries; flows
	// that die without cleanup age out. 0 disables expiry.
	Expiry int
	// OpTimeout bounds how long an operation waits for replica replies
	// before resolving with whatever has answered: a dead Memcached
	// server must not wedge load balancing until TCP gives up on it
	// (the controller's monitor replaces dead servers within 600 ms, but
	// in-flight operations need their own bound). 0 disables the timeout.
	OpTimeout time.Duration
	TCP       tcp.Config
}

// DefaultConfig matches the paper's deployment: 2 replicas, wait for
// both, 10-minute TTL as a leak backstop, 1 s operation bound.
func DefaultConfig() Config {
	return Config{Replicas: 2, WriteConcern: 0, Expiry: 600, OpTimeout: time.Second, TCP: tcp.DefaultConfig()}
}

// Stats counts client-side operation outcomes.
type Stats struct {
	Sets, Gets, Deletes uint64
	// BatchSets counts SetMulti operations; BatchRecords the records
	// they carried (records ÷ ops is the achieved batching factor).
	BatchSets    uint64
	BatchRecords uint64
	// PartialWrites counts operations that resolved with a record stored
	// on some but not all of its replicas (recoverable, but degraded).
	PartialWrites uint64
	Hits, Misses  uint64
	ReplicaErrors uint64
	Timeouts      uint64
	// RoundTrips counts per-replica wire operations issued: one per
	// replica for Set/Get/Delete, one per server batch for SetMulti.
	// Divided by flows served, this is the "store round-trips per flow"
	// cost line the hybrid recovery mode exists to shrink.
	RoundTrips uint64
}

// Entry is one record of a batched write. Key and Value may alias caller
// scratch: SetMulti encodes every record into connection buffers before
// returning, so neither slice is read after the call.
type Entry struct {
	Key   []byte
	Value []byte
}

// SetResult is the resolved outcome of a batched write: the per-op
// counters the dataplane's write barrier consumes.
type SetResult struct {
	// Err is nil when every record is recoverable (stored on at least
	// one replica by resolution time).
	Err error
	// Acked and Failed count replica-level write outcomes across all
	// records of the operation.
	Acked, Failed int
	// TimedOut reports that the operation resolved at OpTimeout instead
	// of by replica replies.
	TimedOut bool
}

// Store is a TCPStore client bound to one Yoda instance's host. It keeps
// one long-lived connection per Memcached server (lazily opened) and
// fans each operation out to the key's K replicas in parallel.
type Store struct {
	host  *netsim.Host
	cfg   Config
	ring  *Ring
	conns map[netsim.HostPort]*memcache.SimClient

	// Steady-state scratch. The store runs on the single-threaded netsim
	// event loop, so reuse needs no locking — but an operation callback
	// may synchronously start another operation, so replica lists live in
	// a take/put pool rather than a single buffer, and multi-op state is
	// recycled only once every batch reply has been delivered.
	pickBufs [][]netsim.HostPort
	freeOps  []*multiOp
	freeBats []*batchState
	byServer map[netsim.HostPort]*batchState

	Stats Stats
}

// multiOp is the pooled in-flight state of one SetMulti operation.
type multiOp struct {
	store     *Store
	nEntries  int
	acks      []int
	concern   []int
	batches   []*batchState
	replied   int // batches whose outcome was counted (stops at done)
	delivered int // batch handle invocations, late replies included
	done      bool
	res       SetResult
	cb        func(SetResult)
	timer     netsim.Timer
	timeoutFn func() // pre-bound OpTimeout callback
}

// batchState is the pooled per-server slice of one SetMulti: the records
// routed to that server, issued as one mset (or a plain set for a single
// record).
type batchState struct {
	op     *multiOp
	server netsim.HostPort
	kvs    []memcache.KV
	idxs   []int                    // entry indices, for per-entry accounting
	handle func(memcache.SimResult) // pre-bound reply callback
}

// takePickBuf pops a replica-list buffer. Callbacks fired while an
// operation issues its fan-out can start nested operations, so each live
// operation holds its own buffer; steady state circulates one or two.
func (s *Store) takePickBuf() []netsim.HostPort {
	if n := len(s.pickBufs); n > 0 {
		b := s.pickBufs[n-1]
		s.pickBufs = s.pickBufs[:n-1]
		return b[:0]
	}
	return nil
}

func (s *Store) putPickBuf(b []netsim.HostPort) {
	if cap(b) == 0 || len(s.pickBufs) >= 8 {
		return
	}
	s.pickBufs = append(s.pickBufs, b)
}

func (s *Store) takeOp() *multiOp {
	var op *multiOp
	if n := len(s.freeOps); n > 0 {
		op = s.freeOps[n-1]
		s.freeOps = s.freeOps[:n-1]
	} else {
		op = &multiOp{store: s}
		op.timeoutFn = func() {
			if op.done {
				return
			}
			op.done = true
			op.store.Stats.Timeouts++
			op.resolve(true)
		}
	}
	op.batches = op.batches[:0]
	op.replied, op.delivered = 0, 0
	op.done = false
	op.res = SetResult{}
	op.timer = netsim.Timer{}
	return op
}

func (s *Store) takeBatch(op *multiOp, server netsim.HostPort) *batchState {
	var b *batchState
	if n := len(s.freeBats); n > 0 {
		b = s.freeBats[n-1]
		s.freeBats = s.freeBats[:n-1]
	} else {
		b = &batchState{}
		b.handle = func(r memcache.SimResult) { b.op.handleReply(b, r) }
	}
	b.op = op
	b.server = server
	b.kvs = b.kvs[:0]
	b.idxs = b.idxs[:0]
	return b
}

// recycle returns the op and its batches to the pools. Called only once
// every batch reply (or connection failure) has been delivered — a
// SimClient fires each pending callback exactly once, so recycling
// earlier could let a late reply from this op corrupt its successor.
func (op *multiOp) recycle() {
	s := op.store
	for _, b := range op.batches {
		b.op = nil
		if len(s.freeBats) < 16 {
			s.freeBats = append(s.freeBats, b)
		}
	}
	op.batches = op.batches[:0]
	op.cb = nil
	if len(s.freeOps) < 8 {
		s.freeOps = append(s.freeOps, op)
	}
}

// resolve reports the operation outcome. Recycling happens separately,
// once delivery is complete.
func (op *multiOp) resolve(timedOut bool) {
	op.res.TimedOut = timedOut
	for i := 0; i < op.nEntries; i++ {
		switch {
		case op.acks[i] == 0:
			op.res.Err = ErrAllReplicasFailed
		case op.acks[i] < op.concern[i]:
			op.store.Stats.PartialWrites++
		}
	}
	cb := op.cb
	res := op.res
	if op.delivered == len(op.batches) {
		op.recycle()
	}
	cb(res)
}

// handleReply processes one batch's reply (or failure).
func (op *multiOp) handleReply(b *batchState, r memcache.SimResult) {
	op.delivered++
	if op.done {
		// Late reply after timeout or early write-concern resolution: the
		// result already went out; just finish delivery accounting.
		if op.delivered == len(op.batches) {
			op.recycle()
		}
		return
	}
	stored := 0
	switch {
	case r.Err != nil:
		// connection-level failure: nothing in this batch stored
	case r.Reply.Type == memcache.ReplyMStored:
		stored = r.Reply.N
	case r.Reply.Type == memcache.ReplyStored:
		stored = 1
	}
	if stored > len(b.idxs) {
		stored = len(b.idxs)
	}
	s := op.store
	for j, idx := range b.idxs {
		if j < stored {
			op.acks[idx]++
			op.res.Acked++
		} else {
			op.res.Failed++
			s.Stats.ReplicaErrors++
		}
	}
	op.replied++
	met := true
	for i := 0; i < op.nEntries; i++ {
		if op.acks[i] < op.concern[i] {
			met = false
			break
		}
	}
	if met || op.replied == len(op.batches) {
		op.done = true
		op.timer.Stop()
		op.resolve(false)
	}
}

// New creates a store client over the given Memcached servers.
func New(host *netsim.Host, servers []netsim.HostPort, cfg Config) *Store {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	return &Store{
		host:  host,
		cfg:   cfg,
		ring:  NewRing(servers),
		conns: make(map[netsim.HostPort]*memcache.SimClient),
	}
}

// SetServers replaces the server set (controller-driven reconfiguration).
// Existing connections to removed servers are closed.
func (s *Store) SetServers(servers []netsim.HostPort) {
	s.ring = NewRing(servers)
	keep := make(map[netsim.HostPort]bool, len(servers))
	for _, sv := range servers {
		keep[sv] = true
	}
	for hp, c := range s.conns {
		if !keep[hp] {
			c.Close()
			delete(s.conns, hp)
		}
	}
}

// Close aborts every open server connection — instance shutdown. The
// connections are closed in deterministic (sorted) order because each
// abort emits a RST whose network delivery may draw from the simulation
// RNG.
func (s *Store) Close() {
	addrs := make([]netsim.HostPort, 0, len(s.conns))
	for hp := range s.conns {
		addrs = append(addrs, hp)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].IP != addrs[j].IP {
			return addrs[i].IP < addrs[j].IP
		}
		return addrs[i].Port < addrs[j].Port
	})
	for _, hp := range addrs {
		s.conns[hp].Close()
		delete(s.conns, hp)
	}
}

// Replicas returns the configured replication factor.
func (s *Store) Replicas() int { return s.cfg.Replicas }

func (s *Store) conn(server netsim.HostPort) *memcache.SimClient {
	if c, ok := s.conns[server]; ok {
		if c.Up() {
			return c
		}
		// Close the dead client before replacing it so its remaining
		// connection state and timers are torn down rather than leaked.
		c.Close()
	}
	c := memcache.DialSim(s.host, server, s.cfg.TCP, nil)
	s.conns[server] = c
	return c
}

// Set stores value under key on all K replicas concurrently. cb fires
// once the write concern is met (nil error), all replicas have failed, or
// the operation timeout expires (success if anything was stored by then).
func (s *Store) Set(key, value []byte, cb func(error)) {
	s.Stats.Sets++
	replicas := s.ring.PickInto(s.takePickBuf(), key, s.cfg.Replicas)
	if len(replicas) == 0 {
		s.putPickBuf(replicas)
		cb(ErrAllReplicasFailed)
		return
	}
	s.Stats.RoundTrips += uint64(len(replicas))
	n := len(replicas)
	need := s.cfg.WriteConcern
	if need <= 0 || need > n {
		need = n
	}
	acks, fails, done := 0, 0, false
	timer := s.armOpTimeout(&done, func() {
		if acks > 0 {
			cb(nil)
		} else {
			cb(ErrAllReplicasFailed)
		}
	})
	for _, server := range replicas {
		s.conn(server).Set(key, value, 0, s.cfg.Expiry, func(r memcache.SimResult) {
			if done {
				return
			}
			if r.Err != nil || r.Reply.Type != memcache.ReplyStored {
				fails++
				s.Stats.ReplicaErrors++
			} else {
				acks++
			}
			if acks >= need {
				done = true
				timer.Stop()
				cb(nil)
			} else if fails+acks == n {
				done = true
				timer.Stop()
				if acks > 0 {
					cb(nil) // stored somewhere: recoverable
				} else {
					cb(ErrAllReplicasFailed)
				}
			}
		})
	}
	s.putPickBuf(replicas)
}

// SetMulti stores every entry on its K replicas in one batched round
// trip: entries are grouped into one pipelined mset command per replica
// server (a plain set when a server receives a single record), so the
// wire cost is one request/reply exchange per server regardless of the
// record count. cb fires exactly once — when every entry has met the
// write concern, when all batches have resolved, or at OpTimeout —
// with the per-replica outcome tally.
//
// Grouping preserves entry order and a deterministic server order; the
// simulator's bit-identical-trace guarantee depends on the issue order
// of the underlying writes.
func (s *Store) SetMulti(entries []Entry, cb func(SetResult)) {
	s.Stats.BatchSets++
	s.Stats.BatchRecords += uint64(len(entries))
	if len(entries) == 0 {
		cb(SetResult{})
		return
	}
	op := s.takeOp()
	op.nEntries = len(entries)
	op.cb = cb
	op.acks = resetInts(op.acks, len(entries))
	op.concern = resetInts(op.concern, len(entries))
	if s.byServer == nil {
		s.byServer = make(map[netsim.HostPort]*batchState, s.cfg.Replicas)
	}
	// Build phase, fully synchronous: group records by replica server.
	// byServer is store-owned scratch — safe because no callback can run
	// until the issue phase below. op.batches keeps insertion order; the
	// simulator's bit-identical-trace guarantee depends on the issue order
	// of the underlying writes, so the map is never iterated.
	replicas := s.takePickBuf()
	for i := range entries {
		e := &entries[i]
		replicas = s.ring.PickInto(replicas[:0], e.Key, s.cfg.Replicas)
		op.concern[i] = s.cfg.WriteConcern
		if op.concern[i] <= 0 || op.concern[i] > len(replicas) {
			op.concern[i] = len(replicas)
		}
		for _, server := range replicas {
			b, ok := s.byServer[server]
			if !ok {
				b = s.takeBatch(op, server)
				s.byServer[server] = b
				op.batches = append(op.batches, b)
			}
			b.kvs = append(b.kvs, memcache.KV{Key: e.Key, Value: e.Value})
			b.idxs = append(b.idxs, i)
		}
	}
	s.putPickBuf(replicas)
	for k := range s.byServer {
		delete(s.byServer, k)
	}
	if len(op.batches) == 0 {
		op.recycle()
		cb(SetResult{Err: ErrAllReplicasFailed, TimedOut: false})
		return
	}
	s.Stats.RoundTrips += uint64(len(op.batches))
	if s.cfg.OpTimeout > 0 {
		op.timer = s.host.Network().Schedule(s.cfg.OpTimeout, op.timeoutFn)
	}
	// Issue phase: one pipelined mset (or plain set) per server. The
	// connection encodes keys and values into its own buffers before
	// returning, so the entries' slices are not retained.
	for _, b := range op.batches {
		conn := s.conn(b.server)
		if len(b.kvs) == 1 {
			conn.Set(b.kvs[0].Key, b.kvs[0].Value, 0, s.cfg.Expiry, b.handle)
		} else {
			conn.SetMulti(b.kvs, s.cfg.Expiry, b.handle)
		}
	}
}

// resetInts returns buf resized to n with every element zeroed.
func resetInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// armOpTimeout schedules the operation bound; on expiry it marks the op
// done and runs resolve. Returns a stoppable timer (the inert zero
// Timer when disabled).
func (s *Store) armOpTimeout(done *bool, resolve func()) netsim.Timer {
	if s.cfg.OpTimeout <= 0 {
		return netsim.Timer{}
	}
	return s.host.Network().Schedule(s.cfg.OpTimeout, func() {
		if *done {
			return
		}
		*done = true
		s.Stats.Timeouts++
		resolve()
	})
}

// Get fetches key: the operation goes to all replicas concurrently and
// the first hit wins. ok=false with nil error means a clean miss on
// every reachable replica.
func (s *Store) Get(key []byte, cb func(value []byte, ok bool, err error)) {
	s.Stats.Gets++
	replicas := s.ring.PickInto(s.takePickBuf(), key, s.cfg.Replicas)
	if len(replicas) == 0 {
		s.putPickBuf(replicas)
		cb(nil, false, ErrAllReplicasFailed)
		return
	}
	s.Stats.RoundTrips += uint64(len(replicas))
	n := len(replicas)
	misses, errs, done := 0, 0, false
	timer := s.armOpTimeout(&done, func() {
		s.Stats.Misses++
		if misses > 0 {
			cb(nil, false, nil) // a reachable replica answered "no such key"
		} else {
			cb(nil, false, ErrAllReplicasFailed)
		}
	})
	for _, server := range replicas {
		s.conn(server).Get(key, func(r memcache.SimResult) {
			if done {
				return
			}
			switch {
			case r.Err == nil && len(r.Reply.Items) > 0:
				done = true
				timer.Stop()
				s.Stats.Hits++
				cb(r.Reply.Items[0].Value, true, nil)
			case r.Err != nil:
				errs++
				s.Stats.ReplicaErrors++
			default:
				misses++
			}
			if !done && misses+errs == n {
				done = true
				timer.Stop()
				s.Stats.Misses++
				if errs == n {
					cb(nil, false, ErrAllReplicasFailed)
				} else {
					cb(nil, false, nil)
				}
			}
		})
	}
	s.putPickBuf(replicas)
}

// Delete removes key from all replicas. cb fires when every replica has
// answered; err is non-nil only if every replica failed.
func (s *Store) Delete(key []byte, cb func(error)) {
	s.Stats.Deletes++
	replicas := s.ring.PickInto(s.takePickBuf(), key, s.cfg.Replicas)
	if len(replicas) == 0 {
		s.putPickBuf(replicas)
		if cb != nil {
			cb(ErrAllReplicasFailed)
		}
		return
	}
	s.Stats.RoundTrips += uint64(len(replicas))
	n := len(replicas)
	answered, errs := 0, 0
	done := false
	timer := s.armOpTimeout(&done, func() {
		if cb == nil {
			return
		}
		if answered > errs {
			cb(nil)
		} else {
			cb(ErrAllReplicasFailed)
		}
	})
	for _, server := range replicas {
		s.conn(server).Delete(key, func(r memcache.SimResult) {
			if done {
				return
			}
			answered++
			if r.Err != nil {
				errs++
				s.Stats.ReplicaErrors++
			}
			if answered == n {
				done = true
				timer.Stop()
				if cb == nil {
					return
				}
				if errs == n {
					cb(ErrAllReplicasFailed)
				} else {
					cb(nil)
				}
			}
		})
	}
	s.putPickBuf(replicas)
}

// Latency measurement helper: TimedSet behaves like Set and reports the
// operation latency to the callback, used by the Figure 10 experiment.
func (s *Store) TimedSet(key, value []byte, cb func(lat time.Duration, err error)) {
	start := s.host.Network().Now()
	s.Set(key, value, func(err error) {
		cb(s.host.Network().Now()-start, err)
	})
}
