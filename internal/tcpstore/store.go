package tcpstore

import (
	"errors"
	"sort"
	"time"

	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

// ErrAllReplicasFailed is reported when no replica server accepted an
// operation.
var ErrAllReplicasFailed = errors.New("tcpstore: all replicas failed")

// Config tunes a TCPStore client.
type Config struct {
	// Replicas is K, the number of Memcached servers each key is stored
	// on. The paper's persistence experiments use 2; 1 degenerates to
	// plain Memcached (the Figure 10/11 baseline).
	Replicas int
	// WriteConcern is how many replica ACKs a Set waits for before
	// reporting success. 0 means all replicas. The paper ACKs the client
	// only after the state is persisted, so the default waits for all.
	WriteConcern int
	// Expiry is the TTL in seconds attached to flow-state entries; flows
	// that die without cleanup age out. 0 disables expiry.
	Expiry int
	// OpTimeout bounds how long an operation waits for replica replies
	// before resolving with whatever has answered: a dead Memcached
	// server must not wedge load balancing until TCP gives up on it
	// (the controller's monitor replaces dead servers within 600 ms, but
	// in-flight operations need their own bound). 0 disables the timeout.
	OpTimeout time.Duration
	TCP       tcp.Config
}

// DefaultConfig matches the paper's deployment: 2 replicas, wait for
// both, 10-minute TTL as a leak backstop, 1 s operation bound.
func DefaultConfig() Config {
	return Config{Replicas: 2, WriteConcern: 0, Expiry: 600, OpTimeout: time.Second, TCP: tcp.DefaultConfig()}
}

// Stats counts client-side operation outcomes.
type Stats struct {
	Sets, Gets, Deletes uint64
	// BatchSets counts SetMulti operations; BatchRecords the records
	// they carried (records ÷ ops is the achieved batching factor).
	BatchSets    uint64
	BatchRecords uint64
	// PartialWrites counts operations that resolved with a record stored
	// on some but not all of its replicas (recoverable, but degraded).
	PartialWrites uint64
	Hits, Misses  uint64
	ReplicaErrors uint64
	Timeouts      uint64
}

// Entry is one record of a batched write.
type Entry struct {
	Key   string
	Value []byte
}

// SetResult is the resolved outcome of a batched write: the per-op
// counters the dataplane's write barrier consumes.
type SetResult struct {
	// Err is nil when every record is recoverable (stored on at least
	// one replica by resolution time).
	Err error
	// Acked and Failed count replica-level write outcomes across all
	// records of the operation.
	Acked, Failed int
	// TimedOut reports that the operation resolved at OpTimeout instead
	// of by replica replies.
	TimedOut bool
}

// Store is a TCPStore client bound to one Yoda instance's host. It keeps
// one long-lived connection per Memcached server (lazily opened) and
// fans each operation out to the key's K replicas in parallel.
type Store struct {
	host  *netsim.Host
	cfg   Config
	ring  *Ring
	conns map[netsim.HostPort]*memcache.SimClient

	Stats Stats
}

// New creates a store client over the given Memcached servers.
func New(host *netsim.Host, servers []netsim.HostPort, cfg Config) *Store {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	return &Store{
		host:  host,
		cfg:   cfg,
		ring:  NewRing(servers),
		conns: make(map[netsim.HostPort]*memcache.SimClient),
	}
}

// SetServers replaces the server set (controller-driven reconfiguration).
// Existing connections to removed servers are closed.
func (s *Store) SetServers(servers []netsim.HostPort) {
	s.ring = NewRing(servers)
	keep := make(map[netsim.HostPort]bool, len(servers))
	for _, sv := range servers {
		keep[sv] = true
	}
	for hp, c := range s.conns {
		if !keep[hp] {
			c.Close()
			delete(s.conns, hp)
		}
	}
}

// Close aborts every open server connection — instance shutdown. The
// connections are closed in deterministic (sorted) order because each
// abort emits a RST whose network delivery may draw from the simulation
// RNG.
func (s *Store) Close() {
	addrs := make([]netsim.HostPort, 0, len(s.conns))
	for hp := range s.conns {
		addrs = append(addrs, hp)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].IP != addrs[j].IP {
			return addrs[i].IP < addrs[j].IP
		}
		return addrs[i].Port < addrs[j].Port
	})
	for _, hp := range addrs {
		s.conns[hp].Close()
		delete(s.conns, hp)
	}
}

// Replicas returns the configured replication factor.
func (s *Store) Replicas() int { return s.cfg.Replicas }

func (s *Store) conn(server netsim.HostPort) *memcache.SimClient {
	if c, ok := s.conns[server]; ok {
		if c.Up() {
			return c
		}
		// Close the dead client before replacing it so its remaining
		// connection state and timers are torn down rather than leaked.
		c.Close()
	}
	c := memcache.DialSim(s.host, server, s.cfg.TCP, nil)
	s.conns[server] = c
	return c
}

// Set stores value under key on all K replicas concurrently. cb fires
// once the write concern is met (nil error), all replicas have failed, or
// the operation timeout expires (success if anything was stored by then).
func (s *Store) Set(key string, value []byte, cb func(error)) {
	s.Stats.Sets++
	replicas := s.ring.Pick(key, s.cfg.Replicas)
	if len(replicas) == 0 {
		cb(ErrAllReplicasFailed)
		return
	}
	need := s.cfg.WriteConcern
	if need <= 0 || need > len(replicas) {
		need = len(replicas)
	}
	acks, fails, done := 0, 0, false
	timer := s.armOpTimeout(&done, func() {
		if acks > 0 {
			cb(nil)
		} else {
			cb(ErrAllReplicasFailed)
		}
	})
	for _, server := range replicas {
		s.conn(server).Set(key, value, 0, s.cfg.Expiry, func(r memcache.SimResult) {
			if done {
				return
			}
			if r.Err != nil || r.Reply.Type != memcache.ReplyStored {
				fails++
				s.Stats.ReplicaErrors++
			} else {
				acks++
			}
			if acks >= need {
				done = true
				timer.Stop()
				cb(nil)
			} else if fails+acks == len(replicas) {
				done = true
				timer.Stop()
				if acks > 0 {
					cb(nil) // stored somewhere: recoverable
				} else {
					cb(ErrAllReplicasFailed)
				}
			}
		})
	}
}

// SetMulti stores every entry on its K replicas in one batched round
// trip: entries are grouped into one pipelined mset command per replica
// server (a plain set when a server receives a single record), so the
// wire cost is one request/reply exchange per server regardless of the
// record count. cb fires exactly once — when every entry has met the
// write concern, when all batches have resolved, or at OpTimeout —
// with the per-replica outcome tally.
//
// Grouping preserves entry order and a deterministic server order; the
// simulator's bit-identical-trace guarantee depends on the issue order
// of the underlying writes.
func (s *Store) SetMulti(entries []Entry, cb func(SetResult)) {
	s.Stats.BatchSets++
	s.Stats.BatchRecords += uint64(len(entries))
	if len(entries) == 0 {
		cb(SetResult{})
		return
	}
	type batch struct {
		server netsim.HostPort
		items  []memcache.Item
		idxs   []int // entry indices, for per-entry accounting
	}
	var batches []*batch
	byServer := make(map[netsim.HostPort]*batch, s.cfg.Replicas)
	acks := make([]int, len(entries))
	concern := make([]int, len(entries))
	for i, e := range entries {
		replicas := s.ring.Pick(e.Key, s.cfg.Replicas)
		concern[i] = s.cfg.WriteConcern
		if concern[i] <= 0 || concern[i] > len(replicas) {
			concern[i] = len(replicas)
		}
		for _, server := range replicas {
			b, ok := byServer[server]
			if !ok {
				b = &batch{server: server}
				byServer[server] = b
				batches = append(batches, b)
			}
			b.items = append(b.items, memcache.Item{Key: e.Key, Value: e.Value})
			b.idxs = append(b.idxs, i)
		}
	}
	if len(batches) == 0 {
		cb(SetResult{Err: ErrAllReplicasFailed, TimedOut: false})
		return
	}
	res := SetResult{}
	replied, done := 0, false
	resolve := func(timedOut bool) {
		res.TimedOut = timedOut
		for i := range entries {
			switch {
			case acks[i] == 0:
				res.Err = ErrAllReplicasFailed
			case acks[i] < concern[i]:
				s.Stats.PartialWrites++
			}
		}
		cb(res)
	}
	timer := s.armOpTimeout(&done, func() { resolve(true) })
	finishBatch := func(b *batch, stored int) {
		for j, idx := range b.idxs {
			if j < stored {
				acks[idx]++
				res.Acked++
			} else {
				res.Failed++
				s.Stats.ReplicaErrors++
			}
		}
		replied++
		met := true
		for i := range entries {
			if acks[i] < concern[i] {
				met = false
				break
			}
		}
		if met || replied == len(batches) {
			done = true
			timer.Stop()
			resolve(false)
		}
	}
	for _, b := range batches {
		b := b
		handle := func(r memcache.SimResult) {
			if done {
				return
			}
			stored := 0
			switch {
			case r.Err != nil:
				// connection-level failure: nothing in this batch stored
			case r.Reply.Type == memcache.ReplyMStored:
				stored = r.Reply.N
			case r.Reply.Type == memcache.ReplyStored:
				stored = 1
			}
			if stored > len(b.idxs) {
				stored = len(b.idxs)
			}
			finishBatch(b, stored)
		}
		conn := s.conn(b.server)
		if len(b.items) == 1 {
			conn.Set(b.items[0].Key, b.items[0].Value, 0, s.cfg.Expiry, handle)
		} else {
			conn.SetMulti(b.items, s.cfg.Expiry, handle)
		}
	}
}

// armOpTimeout schedules the operation bound; on expiry it marks the op
// done and runs resolve. Returns a stoppable timer (the inert zero
// Timer when disabled).
func (s *Store) armOpTimeout(done *bool, resolve func()) netsim.Timer {
	if s.cfg.OpTimeout <= 0 {
		return netsim.Timer{}
	}
	return s.host.Network().Schedule(s.cfg.OpTimeout, func() {
		if *done {
			return
		}
		*done = true
		s.Stats.Timeouts++
		resolve()
	})
}

// Get fetches key: the operation goes to all replicas concurrently and
// the first hit wins. ok=false with nil error means a clean miss on
// every reachable replica.
func (s *Store) Get(key string, cb func(value []byte, ok bool, err error)) {
	s.Stats.Gets++
	replicas := s.ring.Pick(key, s.cfg.Replicas)
	if len(replicas) == 0 {
		cb(nil, false, ErrAllReplicasFailed)
		return
	}
	misses, errs, done := 0, 0, false
	timer := s.armOpTimeout(&done, func() {
		s.Stats.Misses++
		if misses > 0 {
			cb(nil, false, nil) // a reachable replica answered "no such key"
		} else {
			cb(nil, false, ErrAllReplicasFailed)
		}
	})
	for _, server := range replicas {
		s.conn(server).Get(key, func(r memcache.SimResult) {
			if done {
				return
			}
			switch {
			case r.Err == nil && len(r.Reply.Items) > 0:
				done = true
				timer.Stop()
				s.Stats.Hits++
				cb(r.Reply.Items[0].Value, true, nil)
			case r.Err != nil:
				errs++
				s.Stats.ReplicaErrors++
			default:
				misses++
			}
			if !done && misses+errs == len(replicas) {
				done = true
				timer.Stop()
				s.Stats.Misses++
				if errs == len(replicas) {
					cb(nil, false, ErrAllReplicasFailed)
				} else {
					cb(nil, false, nil)
				}
			}
		})
	}
}

// Delete removes key from all replicas. cb fires when every replica has
// answered; err is non-nil only if every replica failed.
func (s *Store) Delete(key string, cb func(error)) {
	s.Stats.Deletes++
	replicas := s.ring.Pick(key, s.cfg.Replicas)
	if len(replicas) == 0 {
		if cb != nil {
			cb(ErrAllReplicasFailed)
		}
		return
	}
	answered, errs := 0, 0
	done := false
	timer := s.armOpTimeout(&done, func() {
		if cb == nil {
			return
		}
		if answered > errs {
			cb(nil)
		} else {
			cb(ErrAllReplicasFailed)
		}
	})
	for _, server := range replicas {
		s.conn(server).Delete(key, func(r memcache.SimResult) {
			if done {
				return
			}
			answered++
			if r.Err != nil {
				errs++
				s.Stats.ReplicaErrors++
			}
			if answered == len(replicas) {
				done = true
				timer.Stop()
				if cb == nil {
					return
				}
				if errs == len(replicas) {
					cb(ErrAllReplicasFailed)
				} else {
					cb(nil)
				}
			}
		})
	}
}

// Latency measurement helper: TimedSet behaves like Set and reports the
// operation latency to the callback, used by the Figure 10 experiment.
func (s *Store) TimedSet(key string, value []byte, cb func(lat time.Duration, err error)) {
	start := s.host.Network().Now()
	s.Set(key, value, func(err error) {
		cb(s.host.Network().Now()-start, err)
	})
}
