package yoda_test

import (
	"testing"
	"time"

	yoda "repro"
)

func TestTestbedQuickstart(t *testing.T) {
	tb := yoda.NewTestbed(yoda.TestbedConfig{Seed: 1})
	defer tb.Close()
	vip := tb.AddService("mysite", map[string][]byte{"/": []byte("hello world")}, 3)
	res := tb.Fetch(vip, "/")
	if res == nil || res.Err != nil {
		t.Fatalf("fetch: %+v", res)
	}
	if string(res.Resp.Body) != "hello world" {
		t.Fatalf("body: %q", res.Resp.Body)
	}
	if res.Elapsed() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestTestbedSurvivesInstanceFailure(t *testing.T) {
	tb := yoda.NewTestbed(yoda.TestbedConfig{Seed: 2, Instances: 3})
	defer tb.Close()
	vip := tb.AddService("svc", map[string][]byte{"/x": []byte("y")}, 2)
	if r := tb.Fetch(vip, "/x"); r == nil || r.Err != nil {
		t.Fatalf("warmup fetch: %+v", r)
	}
	var mid *yoda.FetchResult
	tb.FetchAsync(vip, "/x", func(r *yoda.FetchResult) { mid = r })
	tb.Run(50 * time.Millisecond) // request in flight
	for i := range tb.Cluster.Yoda {
		tb.KillInstance(i)
		break
	}
	tb.Run(30 * time.Second)
	if mid == nil || mid.Err != nil {
		t.Fatalf("flow across failure: %+v", mid)
	}
	// Subsequent fetches keep working.
	if r := tb.Fetch(vip, "/x"); r == nil || r.Err != nil {
		t.Fatalf("post-failure fetch: %+v", r)
	}
}

func TestTestbedPolicyText(t *testing.T) {
	tb := yoda.NewTestbed(yoda.TestbedConfig{Seed: 3})
	defer tb.Close()
	vip := tb.AddService("svc", map[string][]byte{"/a.jpg": []byte("img"), "/b.css": []byte("css")}, 2)
	err := tb.SetPolicy(vip, `
rule jpg prio=2 url=*.jpg split=svc-srv-1:1
rule css prio=1 url=*.css split=svc-srv-2:1
`)
	if err != nil {
		t.Fatal(err)
	}
	if r := tb.Fetch(vip, "/a.jpg"); r == nil || r.Err != nil || string(r.Resp.Body) != "img" {
		t.Fatalf("jpg fetch: %+v", r)
	}
	if r := tb.Fetch(vip, "/b.css"); r == nil || r.Err != nil || string(r.Resp.Body) != "css" {
		t.Fatalf("css fetch: %+v", r)
	}
	if tb.Cluster.Backends["svc-srv-1"].Server.Requests < 1 {
		t.Fatal("jpg backend unused")
	}
	// Unknown backend in policy text errors.
	if err := tb.SetPolicy(vip, "rule r prio=1 split=nope:1"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestTestbedDefaults(t *testing.T) {
	tb := yoda.NewTestbed(yoda.TestbedConfig{})
	defer tb.Close()
	if len(tb.Cluster.Yoda) != 4 || len(tb.Cluster.StoreServers) != 3 {
		t.Fatalf("defaults: %d instances, %d stores", len(tb.Cluster.Yoda), len(tb.Cluster.StoreServers))
	}
	vip := tb.AddService("svc", map[string][]byte{"/": []byte("ok")}, 0) // 0 -> 1 backend
	if r := tb.Fetch(vip, "/"); r == nil || r.Err != nil {
		t.Fatalf("fetch: %+v", r)
	}
}
