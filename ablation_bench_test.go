// Ablation benchmarks for Yoda's design choices: what breaks (or what it
// costs) when a mechanism is weakened. These complement the figure
// benchmarks in bench_test.go; DESIGN.md lists the choices under test.
package yoda_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/assignment"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/tcpstore"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BenchmarkAblationTCPStoreReplication quantifies the value of TCPStore's
// client-side replication: under a correlated failure (one Memcached
// server and then one Yoda instance), K=2 keeps every flow alive while
// K=1 breaks the flows whose only record lived on the dead server.
func BenchmarkAblationTCPStoreReplication(b *testing.B) {
	run := func(replicas int) (broken, total, recovered int) {
		c := cluster.New(77)
		c.AddStoreServers(3, memcache.DefaultSimServerConfig())
		objs := map[string][]byte{"/o": workload.SynthBody("/o", 80*1024)}
		c.AddBackend("srv-1", objs, httpsim.DefaultServerConfig())
		scfg := tcpstore.DefaultConfig()
		scfg.Replicas = replicas
		c.AddYodaN(2, core.DefaultConfig(), scfg)
		vip := c.AddVIP("svc")
		ctCfg := controller.DefaultConfig()
		ctCfg.ScaleInterval = 0
		ct := controller.New(c, ctCfg)
		ct.SetPolicy(vip, c.SimpleSplitRules("srv-1"), nil)
		ct.Start()
		done := 0
		for i := 0; i < 12; i++ {
			cl := c.NewClient(httpsim.DefaultClientConfig())
			i := i
			c.Net.Schedule(time.Duration(i)*20*time.Millisecond, func() {
				cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/o", func(r *httpsim.FetchResult) {
					done++
					if r.Err != nil {
						broken++
					}
				})
			})
		}
		// Correlated failure: a store server dies, then the instance that
		// owns the flows. Recovery must come from the surviving replica.
		c.Net.Schedule(150*time.Millisecond, func() { c.StoreServers[0].Host().Detach() })
		c.Net.Schedule(320*time.Millisecond, func() {
			for _, in := range c.Yoda {
				if in.FlowCount() > 0 {
					in.Fail()
					return
				}
			}
		})
		c.Net.RunFor(2 * time.Minute)
		rec := 0
		for _, in := range c.Yoda {
			rec += int(in.Recovered)
		}
		return broken, done, rec
	}
	var b1, b2, t1, t2 int
	for i := 0; i < b.N; i++ {
		b1, t1, _ = run(1)
		b2, t2, _ = run(2)
	}
	b.ReportMetric(float64(b1)/float64(t1)*100, "broken-K1-%")
	b.ReportMetric(float64(b2)/float64(t2)*100, "broken-K2-%")
}

// BenchmarkAblationMigrationBudget sweeps δ (Eq. 6–7) over the trace:
// tighter budgets migrate fewer connections at a small instance-count
// premium. δ=0 means unlimited (Yoda-no-limit's constraint set with
// stickiness retained).
func BenchmarkAblationMigrationBudget(b *testing.B) {
	tr := trace.Generate(trace.DefaultConfig())
	const windows = 24
	sweep := []float64{0, 0.02, 0.10, 0.30}
	type out struct{ migrated, instances float64 }
	var results map[float64]out
	for iter := 0; iter < b.N; iter++ {
		results = map[float64]out{}
		for _, delta := range sweep {
			var prev *assignment.Assignment
			migSum, instSum := 0.0, 0.0
			rounds := 0
			for w := 0; w < windows; w++ {
				p := tr.ProblemAt(w, 12000, 2000, 600, 4)
				p.Old = prev
				p.TransientCheck = prev != nil
				p.MigrationLimit = delta
				a, err := assignment.SolveGreedy(p)
				if err != nil {
					continue
				}
				if prev != nil {
					q := *p
					migSum += assignment.MigratedFraction(&q, a)
					instSum += float64(a.Used())
					rounds++
				}
				prev = a
			}
			if rounds > 0 {
				results[delta] = out{migrated: migSum / float64(rounds), instances: instSum / float64(rounds)}
			}
		}
	}
	for _, delta := range sweep {
		r := results[delta]
		name := fmt.Sprintf("migrated-δ=%.2f-%%", delta)
		b.ReportMetric(r.migrated*100, name)
		b.ReportMetric(r.instances, fmt.Sprintf("instances-δ=%.2f", delta))
	}
}

// BenchmarkAblationRuleCapacity sweeps R_y: smaller per-instance rule
// budgets cut lookup latency (Figure 6's linear scan) but cost instances.
func BenchmarkAblationRuleCapacity(b *testing.B) {
	tr := trace.Generate(trace.DefaultConfig())
	sweep := []int{1000, 2000, 4000, 8000}
	var used map[int]int
	for iter := 0; iter < b.N; iter++ {
		used = map[int]int{}
		for _, ry := range sweep {
			p := tr.ProblemAt(0, 12000, ry, 900, 4)
			a, err := assignment.SolveGreedy(p)
			if err != nil {
				continue
			}
			used[ry] = a.Used()
		}
	}
	instCfg := core.DefaultConfig()
	for _, ry := range sweep {
		b.ReportMetric(float64(used[ry]), fmt.Sprintf("instances-Ry=%d", ry))
		lat := instCfg.LookupBase + time.Duration(ry)*instCfg.LookupPerRule
		b.ReportMetric(float64(lat)/float64(time.Millisecond), fmt.Sprintf("lookup-ms-Ry=%d", ry))
	}
}

// BenchmarkAblationMonitorInterval sweeps the failure-detection period:
// slower monitors stretch recovery (the paper's 600 ms is the knee
// between repair traffic and recovery latency).
func BenchmarkAblationMonitorInterval(b *testing.B) {
	run := func(interval time.Duration) time.Duration {
		c := cluster.New(78)
		c.AddStoreServers(2, memcache.DefaultSimServerConfig())
		objs := map[string][]byte{"/o": workload.SynthBody("/o", 120*1024)}
		c.AddBackend("srv-1", objs, httpsim.DefaultServerConfig())
		c.AddYodaN(2, core.DefaultConfig(), tcpstore.DefaultConfig())
		vip := c.AddVIP("svc")
		ctCfg := controller.DefaultConfig()
		ctCfg.PingInterval = interval
		ctCfg.ScaleInterval = 0
		ct := controller.New(c, ctCfg)
		ct.SetPolicy(vip, c.SimpleSplitRules("srv-1"), nil)
		ct.Start()
		var res *httpsim.FetchResult
		cl := c.NewClient(httpsim.DefaultClientConfig())
		cl.Get(netsim.HostPort{IP: vip, Port: 80}, "/o", func(r *httpsim.FetchResult) { res = r })
		c.Net.RunFor(200 * time.Millisecond)
		for _, in := range c.Yoda {
			if in.FlowCount() > 0 {
				in.Fail()
				break
			}
		}
		c.Net.RunFor(time.Minute)
		if res == nil || res.Err != nil {
			return -1
		}
		return res.Elapsed()
	}
	var lat map[time.Duration]time.Duration
	sweep := []time.Duration{150 * time.Millisecond, 600 * time.Millisecond, 2400 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		lat = map[time.Duration]time.Duration{}
		for _, iv := range sweep {
			lat[iv] = run(iv)
		}
	}
	for _, iv := range sweep {
		b.ReportMetric(lat[iv].Seconds(), fmt.Sprintf("fetch-s-ping=%v", iv))
	}
}
