package yoda_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// rngAllowlist names the packages allowed to construct their own RNGs.
// netsim owns the per-shard deterministic RNGs; trace, workload, and the
// experiment drivers seed trial-level generators outside any event loop.
// Every other component must use the shard-local handle cached from its
// Network at construction — a private rand.New is exactly how the
// pre-PR-4 fig14 map-iteration bug slipped in, and under the sharded
// dataplane a shared one is a data race as well.
var rngAllowlist = map[string]bool{
	"internal/netsim":      true,
	"internal/trace":       true,
	"internal/workload":    true,
	"internal/experiments": true,
}

// TestNoStrayRNGConstruction is the lint half of the per-shard RNG
// satellite: it fails if any non-test source file outside the allowlist
// calls rand.New. ci.sh runs the same check as a grep stage so it fails
// fast before the test suite.
func TestNoStrayRNGConstruction(t *testing.T) {
	var offenders []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			if rngAllowlist[filepath.ToSlash(path)] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, "rand.New(") {
				offenders = append(offenders, path+":"+itoa(i+1)+": "+strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) > 0 {
		t.Fatalf("rand.New outside the netsim allowlist — use the shard-local RNG handle from Network.Rand at construction instead:\n%s",
			strings.Join(offenders, "\n"))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
