// Command yodactl is the operator CLI for a Yoda deployment, speaking
// the admin HTTP API (§6's RESTful interface). It can also launch a demo
// deployment with the API server attached, so the full operator loop can
// be exercised from two shells:
//
//	yodactl -addr 127.0.0.1:7070 serve            # shell 1: demo cluster
//	yodactl -addr 127.0.0.1:7070 instances        # shell 2: operate it
//	yodactl -addr 127.0.0.1:7070 vips
//	yodactl -addr 127.0.0.1:7070 backends
//	yodactl -addr 127.0.0.1:7070 stats
//	yodactl -addr 127.0.0.1:7070 fail 0
//	yodactl -addr 127.0.0.1:7070 run 5s
//	yodactl -addr 127.0.0.1:7070 set-policy shop 'rule all prio=1 url=* split=shop-srv-1:1'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	yoda "repro"
	"repro/internal/adminapi"
	"repro/internal/controller"
	"repro/internal/httpsim"
	"repro/internal/netsim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "admin API address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	if args[0] == "serve" {
		serve(*addr)
		return
	}
	cl := adminapi.NewClient(*addr)
	if err := dispatch(cl, args); err != nil {
		fmt.Fprintf(os.Stderr, "yodactl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: yodactl [-addr host:port] <serve|instances|vips|backends|stats|fail N|run DUR|set-policy SERVICE RULES>")
	os.Exit(2)
}

func dispatch(cl *adminapi.Client, args []string) error {
	switch args[0] {
	case "instances":
		insts, err := cl.Instances()
		if err != nil {
			return err
		}
		fmt.Printf("%-5s %-12s %-6s %-6s %-6s %-10s %s\n", "idx", "ip", "alive", "flows", "rules", "recovered", "cpu-busy")
		for _, in := range insts {
			fmt.Printf("%-5d %-12s %-6v %-6d %-6d %-10d %.1fms\n",
				in.Index, in.IP, in.Alive, in.Flows, in.Rules, in.Recovered, in.CPUBusyMs)
		}
		return nil
	case "vips":
		vips, err := cl.VIPs()
		if err != nil {
			return err
		}
		for _, v := range vips {
			fmt.Printf("%s -> %s on %d instances %v (%d rules)\n", v.Service, v.VIP, len(v.Instances), v.Instances, v.Rules)
		}
		return nil
	case "backends":
		bs, err := cl.Backends()
		if err != nil {
			return err
		}
		for _, b := range bs {
			fmt.Printf("%-16s %-16s alive=%-5v requests=%d\n", b.Name, b.Addr, b.Alive, b.Requests)
		}
		return nil
	case "stats":
		st, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("virtual time:     %s\n", st.VirtualTime)
		fmt.Printf("detections:       %d\n", st.Detections)
		fmt.Printf("scale-outs:       %d (+%d instances)\n", st.ScaleOuts, st.InstancesAdded)
		for svc, n := range st.TrafficPerVIP {
			fmt.Printf("traffic[%s]:    %d flows\n", svc, n)
		}
		return nil
	case "fail":
		if len(args) != 2 {
			return fmt.Errorf("fail needs an instance index")
		}
		idx, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("bad index %q", args[1])
		}
		if err := cl.FailInstance(idx); err != nil {
			return err
		}
		fmt.Printf("instance %d failed; the monitor will repair the mapping within 600ms of virtual time\n", idx)
		return nil
	case "run":
		if len(args) != 2 {
			return fmt.Errorf("run needs a duration, e.g. 5s")
		}
		d, err := time.ParseDuration(args[1])
		if err != nil {
			return err
		}
		now, err := cl.Run(d)
		if err != nil {
			return err
		}
		fmt.Printf("virtual time is now %v\n", now)
		return nil
	case "set-policy":
		if len(args) != 3 {
			return fmt.Errorf("set-policy needs SERVICE and RULES")
		}
		if err := cl.SetPolicy(args[1], args[2]); err != nil {
			return err
		}
		fmt.Println("policy installed (applies to new connections)")
		return nil
	default:
		usage()
		return nil
	}
}

// serve stands up a demo deployment with background traffic and attaches
// the admin API, so yodactl commands from another shell operate on a
// live (simulated) system. Virtual time advances only via `yodactl run`.
func serve(addr string) {
	tb := yoda.NewTestbed(yoda.TestbedConfig{Seed: 1, Instances: 4, StoreServers: 3})
	vip := tb.AddService("shop", map[string][]byte{
		"/":         []byte("<html>shop</html>"),
		"/item.jpg": make([]byte, 30*1024),
	}, 3)

	// A modest self-sustaining workload inside the simulation.
	var pump func()
	pump = func() {
		tb.FetchAsync(vip, "/item.jpg", func(*httpsim.FetchResult) {})
		tb.Cluster.Net.Schedule(50*time.Millisecond, pump)
	}
	pump()

	srv := adminapi.NewServer(tb.Cluster, tb.Controller)
	if err := srv.Start(addr); err != nil {
		fmt.Fprintf(os.Stderr, "yodactl serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("demo deployment up: service shop behind VIP %v; admin API on %s\n", vip, srv.Addr())
	fmt.Println("advance virtual time with: yodactl -addr", srv.Addr(), "run 5s")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
}

var (
	_ = controller.DefaultConfig
	_ = netsim.IPv4
)
