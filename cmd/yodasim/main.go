// Command yodasim runs the testbed experiments of the paper's evaluation
// (§2.3, §7) in the deterministic simulator and prints the table or
// figure the paper reports.
//
// Usage:
//
//	yodasim -exp table1|fig6|fig9|fig10|fig12|fig12b|fig13|fig14|cpu|upgrade|mflow|all [-seed N] [-parallel] [-shards N] [-recovery hybrid]
//
// -shards selects the number of per-shard event loops for the sharded
// experiments (currently mflow, which holds ~1M flows open across the
// fleet, kills part of it, and verifies per-flow recovery); the paper
// figures run on the single event loop regardless, so their output is
// independent of -shards.
//
// -parallel runs independent trials on separate goroutines: the Figure 6
// rule-count points, the Figure 12 arms, and (with -exp all) the
// experiments themselves. Every trial owns a cluster seeded from -seed,
// and output order is fixed, so results match a sequential run.
//
// -cpuprofile and -memprofile write pprof profiles of the run (see
// EXPERIMENTS.md §Profiling); profiling real CPU does not perturb the
// virtual clock, so profiled results stay bit-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig6, fig9, fig10, fig12, fig12b, fig13, fig14, cpu, upgrade, mflow, all")
	seed := flag.Int64("seed", 1, "simulation seed")
	shardsN := flag.Int("shards", runtime.NumCPU(), "event-loop shards for sharded experiments (mflow)")
	recovery := flag.String("recovery", "", "mflow recovery model: empty (pure HRW re-pick) or hybrid (stateless-table gated adoption)")
	tierb := flag.Bool("tierb", true, "mflow: ride Tier B coalescing sideband connections (delayed ACKs + GSO trains) alongside the run")
	parallel := flag.Bool("parallel", false, "run independent trials/experiments on separate goroutines")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof allocation profile (taken at exit) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yodasim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "yodasim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "yodasim: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // flush recent frees so the profile reflects live + cumulative allocs
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "yodasim: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	runners := map[string]func() fmt.Stringer{
		"table1": func() fmt.Stringer { return experiments.RunTable1(*seed) },
		"fig6": func() fmt.Stringer {
			cfg := experiments.DefaultFig6Config()
			cfg.Seed = *seed
			cfg.Parallel = *parallel
			return experiments.RunFig6(cfg)
		},
		"fig9": func() fmt.Stringer {
			cfg := experiments.DefaultFig9Config()
			cfg.Seed = *seed
			return experiments.RunFig9(cfg)
		},
		"fig10": func() fmt.Stringer {
			cfg := experiments.DefaultFig10Config()
			cfg.Seed = *seed
			return experiments.RunFig10(cfg)
		},
		"fig12": func() fmt.Stringer {
			cfg := experiments.DefaultFig12Config()
			cfg.Seed = *seed
			cfg.Parallel = *parallel
			return experiments.RunFig12(cfg)
		},
		// Figure 11 is the CPU half of the Figure 10 harness.
		"fig11": func() fmt.Stringer {
			cfg := experiments.DefaultFig10Config()
			cfg.Seed = *seed
			return experiments.RunFig10(cfg)
		},
		"fig12b": func() fmt.Stringer { return experiments.RunFig12b(*seed) },
		"fig13": func() fmt.Stringer {
			cfg := experiments.DefaultFig13Config()
			cfg.Seed = *seed
			return experiments.RunFig13(cfg)
		},
		"fig14": func() fmt.Stringer {
			cfg := experiments.DefaultFig14Config()
			cfg.Seed = *seed
			return experiments.RunFig14(cfg)
		},
		"cpu": func() fmt.Stringer {
			cfg := experiments.DefaultCPUConfig()
			cfg.Seed = *seed
			return experiments.RunCPU(cfg)
		},
		"upgrade": func() fmt.Stringer {
			cfg := experiments.DefaultUpgradeConfig()
			cfg.Seed = *seed
			return experiments.RunUpgrade(cfg)
		},
		// mflow is the sharded-dataplane scale experiment (~1M concurrent
		// flows + failure storm). It is not part of -exp all: it is a
		// capacity run, not a paper figure.
		"mflow": func() fmt.Stringer {
			cfg := experiments.DefaultMflowConfig()
			cfg.Seed = *seed
			cfg.Shards = *shardsN
			cfg.Recovery = *recovery
			cfg.TierB = *tierb
			return experiments.RunMflow(cfg)
		},
	}

	order := []string{"table1", "fig6", "fig9", "fig10", "cpu", "fig12", "fig12b", "fig13", "fig14", "upgrade"}
	if *exp != "all" {
		run, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; one of %v, fig11, mflow, or all\n", *exp, order)
			os.Exit(2)
		}
		fmt.Println(run().String())
		return
	}
	if *parallel {
		// Each experiment builds its own simulated cluster from -seed, so
		// they are independent trials; run them concurrently and print in
		// the fixed order.
		outputs := make([]string, len(order))
		var wg sync.WaitGroup
		for i, name := range order {
			wg.Add(1)
			go func(i int, run func() fmt.Stringer) {
				defer wg.Done()
				outputs[i] = run().String()
			}(i, runners[name])
		}
		wg.Wait()
		for _, out := range outputs {
			fmt.Println(out)
		}
		return
	}
	for _, name := range order {
		fmt.Println(runners[name]().String())
	}
}
