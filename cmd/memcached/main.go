// Command memcached runs this repository's memcached-compatible server on
// a real TCP socket — the "unmodified Memcached" that TCPStore builds on
// (§4.3). It speaks the classic text protocol (get/gets/set/add/replace/
// cas/delete/touch/flush_all/stats/version/quit) and is wire-compatible
// with standard memcached clients for those commands.
//
// Usage:
//
//	memcached [-addr 127.0.0.1:11211] [-max-bytes N]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/memcache"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:11211", "listen address")
	maxBytes := flag.Int("max-bytes", 64<<20, "memory cap in bytes (0 = unlimited)")
	flag.Parse()

	engine := memcache.NewEngine(*maxBytes, nil)
	srv, err := memcache.ListenAndServe(*addr, engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcached: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("memcached-compatible server listening on %s (cap %d bytes)\n", srv.Addr(), *maxBytes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	st := engine.Stats()
	fmt.Printf("shutting down: %d items, %d bytes, %d sets, %d hits, %d misses\n",
		st.CurrItems, st.BytesUsed, st.Sets, st.GetHits, st.GetMisses)
}
