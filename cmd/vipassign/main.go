// Command vipassign runs the §8 trace-driven simulations: Figure 15 (the
// max-to-average traffic ratios that bound the shared-service cost
// saving) and Figure 16 (the 24-hour VIP-assignment replay comparing
// all-to-all, Yoda-no-limit and Yoda-limit).
//
// Usage:
//
//	vipassign -exp fig15|fig16|all [-seed N] [-vips N] [-windows N]
//	          [-traffic-cap N] [-rule-cap N] [-migration-limit F]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig15, fig16, all")
	seed := flag.Int64("seed", 1, "trace seed")
	vips := flag.Int("vips", 120, "number of VIPs in the trace")
	windows := flag.Int("windows", 0, "limit Figure 16 to the first N windows (0 = all 144)")
	trafficCap := flag.Float64("traffic-cap", 12000, "T_y: per-instance traffic capacity (req/s)")
	ruleCap := flag.Int("rule-cap", 2000, "R_y: per-instance rule capacity")
	migLimit := flag.Float64("migration-limit", 0.10, "δ: migration budget for Yoda-limit")
	flag.Parse()

	tcfg := trace.DefaultConfig()
	tcfg.Seed = *seed
	tcfg.NumVIPs = *vips

	switch *exp {
	case "fig15":
		fmt.Println(experiments.RunFig15(tcfg))
	case "fig16":
		fmt.Println(runFig16(tcfg, *windows, *trafficCap, *ruleCap, *migLimit))
	case "all":
		fmt.Println(experiments.RunFig15(tcfg))
		fmt.Println(runFig16(tcfg, *windows, *trafficCap, *ruleCap, *migLimit))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q (fig15, fig16, all)\n", *exp)
		os.Exit(2)
	}
}

func runFig16(tcfg trace.Config, windows int, trafficCap float64, ruleCap int, migLimit float64) *experiments.Fig16Result {
	cfg := experiments.DefaultFig16Config()
	cfg.Trace = tcfg
	cfg.Windows = windows
	cfg.TrafficCap = trafficCap
	cfg.RuleCap = ruleCap
	cfg.MigrationLimit = migLimit
	return experiments.RunFig16(cfg)
}
