// Command tracegen generates and inspects synthetic production traffic
// traces (the §8 substitute documented in DESIGN.md). It can print a
// summary or dump the full per-window series as CSV for plotting.
//
// Usage:
//
//	tracegen [-seed N] [-vips N] [-total-traffic N] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "generator seed")
	vips := flag.Int("vips", 120, "number of VIPs")
	total := flag.Float64("total-traffic", 1_000_000, "aggregate average traffic (req/s)")
	csv := flag.Bool("csv", false, "dump the full series as CSV (vip,window,traffic)")
	flag.Parse()

	cfg := trace.DefaultConfig()
	cfg.Seed = *seed
	cfg.NumVIPs = *vips
	cfg.TotalTraffic = *total
	tr := trace.Generate(cfg)

	if *csv {
		w := os.Stdout
		fmt.Fprintln(w, "vip,rules,window,traffic")
		for i := range tr.VIPs {
			v := &tr.VIPs[i]
			for wi, x := range v.Series {
				fmt.Fprintf(w, "%d,%d,%d,%.2f\n", v.ID, v.Rules, wi, x)
			}
		}
		return
	}

	st := tr.Ratios()
	fmt.Printf("trace: %d VIPs, %d windows of %v, %d total rules\n",
		len(tr.VIPs), tr.Windows, cfg.Window, tr.TotalRules())
	fmt.Printf("max/avg ratios: min %.2fx, mean %.2fx, max %.2fx (paper: 1.07x / 3.7x / 50.3x)\n",
		st.Min, st.Mean, st.Max)
	fmt.Println("\ntop VIPs by volume:")
	for i := 0; i < 10 && i < len(tr.VIPs); i++ {
		v := &tr.VIPs[i]
		fmt.Printf("  vip %3d: avg %.0f req/s, peak %.0f req/s (%.2fx), %d rules\n",
			v.ID, v.Avg(), v.Max(), v.MaxToAvg(), v.Rules)
	}
}
