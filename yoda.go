// Package yoda is a from-scratch reproduction of "Yoda: A Highly
// Available Layer-7 Load Balancer" (EuroSys 2016): a multi-tenant L7
// load-balancer-as-a-service whose availability comes from decoupling
// per-flow TCP state into a replicated in-memory store (TCPStore) and
// from front-and-back VIP indirection through the cloud's L4 load
// balancer, so that any instance can transparently take over any flow
// when an instance fails.
//
// The package is a facade over the implementation packages:
//
//   - netsim     — deterministic discrete-event packet network
//   - tcp        — userspace TCP endpoints (clients, backends, TCPStore links)
//   - httpsim    — HTTP/1.0-1.1 parsing, origin servers, browser clients
//   - l4lb       — Ananta-style L4 mux: VIP ECMP split + SNAT
//   - memcache   — memcached-compatible engine with real-TCP and simulated transports
//   - tcpstore   — the replicated flow-state store client
//   - rules      — L7 rules: match/action/priority, the paper's policy interface
//   - core       — the Yoda instance: packet driver, connection & tunneling phases, recovery
//   - haproxy    — the proxy-style baseline the paper compares against
//   - controller — monitor, scaling, policy installation, assignment updates
//   - assignment — the Figure-7 ILP model with greedy/exhaustive solvers
//   - trace      — synthetic production traffic trace (§8)
//   - workload   — the university-website object corpus (§7)
//   - cluster    — testbed assembly
//   - experiments — one runner per table/figure of the paper
//
// # Quick start
//
//	tb := yoda.NewTestbed(yoda.TestbedConfig{Seed: 1, Instances: 4, StoreServers: 3})
//	defer tb.Close()
//	vip := tb.AddService("mysite", map[string][]byte{"/": []byte("hello")}, 3)
//	res := tb.Fetch(vip, "/")
//	fmt.Println(res.Resp.StatusCode, res.Elapsed())
//
// Everything runs in simulated time: Testbed methods advance the virtual
// clock internally, so the snippet above is deterministic and finishes in
// microseconds of wall time.
package yoda

import (
	"repro/internal/assignment"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/haproxy"
	"repro/internal/httpsim"
	"repro/internal/l4lb"
	"repro/internal/memcache"
	"repro/internal/netsim"
	"repro/internal/rules"
	"repro/internal/tcpstore"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported core types. The aliases keep one import path for users of
// the library while the implementation stays layered.
type (
	// Cluster is a simulated testbed of clients, L4/L7 load balancers,
	// TCPStore servers and backends.
	Cluster = cluster.Cluster
	// Instance is one Yoda L7 load-balancer instance.
	Instance = core.Instance
	// InstanceConfig tunes a Yoda instance.
	InstanceConfig = core.Config
	// Controller supervises a cluster: monitoring, scaling, policies.
	Controller = controller.Controller
	// ControllerConfig tunes the controller.
	ControllerConfig = controller.Config
	// Rule is one L7 load-balancing rule (match/action/priority).
	Rule = rules.Rule
	// Backend identifies a backend server in rules.
	Backend = rules.Backend
	// StoreConfig tunes the TCPStore client (replication factor etc.).
	StoreConfig = tcpstore.Config
	// FlowRecord is the decoupled per-flow TCP state kept in TCPStore.
	FlowRecord = core.Record
	// AssignmentProblem is the Figure-7 VIP→instance ILP.
	AssignmentProblem = assignment.Problem
	// Assignment is a VIP→instance mapping.
	Assignment = assignment.Assignment
	// Trace is a synthetic one-day production traffic trace.
	Trace = trace.Trace
	// IP is an IPv4-style simulated address.
	IP = netsim.IP
	// HostPort is one endpoint of a connection.
	HostPort = netsim.HostPort
	// FetchResult is the outcome of one HTTP fetch.
	FetchResult = httpsim.FetchResult
	// HAProxyInstance is the proxy-style baseline LB.
	HAProxyInstance = haproxy.Instance
)

// Constructors and helpers re-exported for library users.
var (
	// NewCluster creates an empty simulated testbed.
	NewCluster = cluster.New
	// DefaultInstanceConfig is the calibrated Yoda instance profile.
	DefaultInstanceConfig = core.DefaultConfig
	// DefaultStoreConfig is the 2-replica TCPStore client profile.
	DefaultStoreConfig = tcpstore.DefaultConfig
	// DefaultControllerConfig mirrors the paper's 600ms monitor.
	DefaultControllerConfig = controller.DefaultConfig
	// NewController creates a controller over a cluster.
	NewController = controller.New
	// ParseRules parses the textual rule format of §5.1.
	ParseRules = rules.ParseRules
	// SolveAssignment runs the greedy Figure-7 solver.
	SolveAssignment = assignment.SolveGreedy
	// VerifyAssignment checks an assignment against all constraints.
	VerifyAssignment = assignment.Verify
	// GenerateTrace builds a synthetic production trace.
	GenerateTrace = trace.Generate
	// DefaultTraceConfig mirrors the §8 trace.
	DefaultTraceConfig = trace.DefaultConfig
	// GenerateCorpus builds the §7 web object corpus.
	GenerateCorpus = workload.GenerateCorpus
	// DefaultMemcacheServerConfig is the calibrated Memcached profile.
	DefaultMemcacheServerConfig = memcache.DefaultSimServerConfig
	// DefaultL4Config mirrors the Ananta-style mux deployment.
	DefaultL4Config = l4lb.DefaultConfig
	// IPv4 assembles a simulated address.
	IPv4 = netsim.IPv4
)
