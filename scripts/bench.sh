#!/usr/bin/env bash
# bench.sh — run the simulator-core performance suite and emit BENCH_core.json.
#
# Runs the microbenchmarks (event loop, timer churn, TCP throughput, flow
# fast path, whole-sim throughput) at full benchtime plus the three figure
# benchmarks (Fig 10/12/13) at one iteration each, then writes a JSON
# summary comparing against the recorded seed (pre-fast-path) baselines.
#
# Usage: scripts/bench.sh [output.json]
#   FAST=1 scripts/bench.sh   # skip the figure benchmarks (~4 min saved)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_core.json}"
MICRO_LOG="$(mktemp)"
FIG_LOG="$(mktemp)"
trap 'rm -f "$MICRO_LOG" "$FIG_LOG"' EXIT

echo "== micro-benchmarks =="
go test -run '^$' -bench \
  'BenchmarkNetsimEventLoop|BenchmarkNetsimTimerChurn|BenchmarkHostDemux|BenchmarkHostAllocPort' \
  -benchmem ./internal/netsim/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkTCPThroughput|BenchmarkTCPBatchRx' -benchmem \
  ./internal/tcp/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkFlowFastPath|BenchmarkStorageWritePath' -benchmem \
  ./internal/core/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkStoreRoundTripsPerFlow|BenchmarkEventsPerFlow' -benchtime 1x \
  ./internal/core/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkMemcacheSession' -benchmem \
  ./internal/memcache/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkSimulatorThroughput' -benchmem \
  . | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkStorageB' -benchtime 2000x \
  ./internal/tcpstore/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkRuleSelect(Reference)?/rules=1000$' \
  -benchmem ./internal/rules/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkReconfigMigration' -benchtime 3x \
  ./internal/reconfig/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkShardedEventLoop' \
  ./internal/netsim/ | tee -a "$MICRO_LOG"
# Best-of-3 for the mflow headline: a single 1x run of a whole-sim
# benchmark swings ±20% with allocator/GC state, and the ci.sh
# regression gate already compares against the best of 3.
go test -run '^$' -bench 'BenchmarkMflowMemPerFlow' -benchtime 1x -count=3 \
  ./internal/experiments/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkFlowmapLookup|BenchmarkFlowmapChurn' -benchmem \
  ./internal/flowmap/ | tee -a "$MICRO_LOG"
go test -run '^$' -bench 'BenchmarkFlowmapMemPerFlow' -benchtime 1x \
  ./internal/flowmap/ | tee -a "$MICRO_LOG"

if [[ "${FAST:-0}" != "1" ]]; then
  echo "== figure benchmarks (one run each; Fig13 takes minutes) =="
  go test -run '^$' -bench \
    'BenchmarkFig10TCPStoreLatency|BenchmarkFig12FailureRecovery|BenchmarkFig13Scalability' \
    -benchtime=1x -timeout 30m . | tee "$FIG_LOG"
fi

# pick <log> <BenchmarkName> <field-index-after-name>: extract one numeric
# column from a `go test -bench` output line.
pick() { awk -v b="$2" -v f="$3" '$1 ~ "^"b {print $(f)}' "$1" | head -1; }

EVLOOP_NS="$(pick "$MICRO_LOG" BenchmarkNetsimEventLoop 3)"
EVLOOP_EPS="$(pick "$MICRO_LOG" BenchmarkNetsimEventLoop 5)"
EVLOOP_ALLOCS="$(awk '$1 ~ /^BenchmarkNetsimEventLoop/ {for(i=1;i<NF;i++) if($(i+1)=="allocs/op") print $i}' "$MICRO_LOG" | head -1)"
TIMER_NS="$(pick "$MICRO_LOG" BenchmarkNetsimTimerChurn 3)"
TCP_MBS="$(awk '$1 ~ /^BenchmarkTCPThroughput/ {for(i=1;i<NF;i++) if($(i+1)=="MB/s") print $i}' "$MICRO_LOG" | head -1)"
HOST_DEMUX_NS="$(pick "$MICRO_LOG" BenchmarkHostDemux 3)"
HOST_ALLOCPORT_NS="$(pick "$MICRO_LOG" BenchmarkHostAllocPort 3)"
FLOW_NS="$(pick "$MICRO_LOG" BenchmarkFlowFastPath 3)"
SIM_NS="$(pick "$MICRO_LOG" BenchmarkSimulatorThroughput 3)"
STORAGE_NS="$(pick "$MICRO_LOG" BenchmarkStorageWritePath 3)"
STORAGE_ALLOCS="$(awk '$1 ~ /^BenchmarkStorageWritePath/ {for(i=1;i<NF;i++) if($(i+1)=="allocs/op") print $i}' "$MICRO_LOG" | head -1)"
MCSESS_NS="$(awk '$1 ~ /^BenchmarkMemcacheSession(-[0-9]+)?$/ {print $3}' "$MICRO_LOG" | head -1)"
MCSESS_ALLOCS="$(awk '$1 ~ /^BenchmarkMemcacheSession(-[0-9]+)?$/ {for(i=1;i<NF;i++) if($(i+1)=="allocs/op") print $i}' "$MICRO_LOG" | head -1)"
MCSESS_REF_NS="$(awk '$1 ~ /^BenchmarkMemcacheSessionReference/ {print $3}' "$MICRO_LOG" | head -1)"
# metric <log> <BenchmarkName> <unit>: extract a named custom metric.
metric() { awk -v b="$2" -v u="$3" '$1 ~ "^"b {for(i=1;i<NF;i++) if($(i+1)==u) print $i}' "$1" | head -1; }
TCP_BATCH_NSSEG="$(metric "$MICRO_LOG" 'BenchmarkTCPBatchRx/mode=batch' ns/seg)"
TCP_SCALAR_NSSEG="$(metric "$MICRO_LOG" 'BenchmarkTCPBatchRx/mode=scalar' ns/seg)"
SB_BATCH_RT="$(metric "$MICRO_LOG" BenchmarkStorageBBatched roundtrips/write)"
SB_SEQ_RT="$(metric "$MICRO_LOG" BenchmarkStorageBSequential roundtrips/write)"
SB_BATCH_US="$(metric "$MICRO_LOG" BenchmarkStorageBBatched virtual-µs/write)"
SB_SEQ_US="$(metric "$MICRO_LOG" BenchmarkStorageBSequential virtual-µs/write)"
RECONFIG_TPUT="$(metric "$MICRO_LOG" BenchmarkReconfigMigration migrated_flows/s)"
RECONFIG_DRAIN_MS="$(metric "$MICRO_LOG" BenchmarkReconfigMigration drain_ms/op)"
SHARD1_EPS="$(metric "$MICRO_LOG" 'BenchmarkShardedEventLoop/shards=1' events/s)"
SHARD2_EPS="$(metric "$MICRO_LOG" 'BenchmarkShardedEventLoop/shards=2' events/s)"
SHARD4_EPS="$(metric "$MICRO_LOG" 'BenchmarkShardedEventLoop/shards=4' events/s)"
SHARD8_EPS="$(metric "$MICRO_LOG" 'BenchmarkShardedEventLoop/shards=8' events/s)"
MFLOW_BPF="$(metric "$MICRO_LOG" BenchmarkMflowMemPerFlow bytes/flow)"
MFLOW_EPS="$(awk '$1 ~ /^BenchmarkMflowMemPerFlow/ {for(i=1;i<NF;i++) if($(i+1)=="events/s" && $i+0>max+0) max=$i} END{print max}' "$MICRO_LOG")"
FM_LOOKUP_NS="$(pick "$MICRO_LOG" 'BenchmarkFlowmapLookup/impl=compact' 3)"
FM_LOOKUP_MAP_NS="$(pick "$MICRO_LOG" 'BenchmarkFlowmapLookup/impl=map' 3)"
FM_LOOKUP_ALLOCS="$(awk '$1 ~ /^BenchmarkFlowmapLookup\/impl=compact/ {for(i=1;i<NF;i++) if($(i+1)=="allocs/op") print $i}' "$MICRO_LOG" | head -1)"
FM_CHURN_NS="$(pick "$MICRO_LOG" BenchmarkFlowmapChurn 3)"
FM_BPF="$(metric "$MICRO_LOG" 'BenchmarkFlowmapMemPerFlow/impl=compact' bytes/flow)"
FM_MAP_BPF="$(metric "$MICRO_LOG" 'BenchmarkFlowmapMemPerFlow/impl=map' bytes/flow)"
RT_PAPER="$(metric "$MICRO_LOG" 'BenchmarkStoreRoundTripsPerFlow/mode=paper' roundtrips/flow)"
RT_HYBRID="$(metric "$MICRO_LOG" 'BenchmarkStoreRoundTripsPerFlow/mode=hybrid' roundtrips/flow)"
EPF_OFF="$(metric "$MICRO_LOG" 'BenchmarkEventsPerFlow/tierb=off' events/flow)"
EPF_ON="$(metric "$MICRO_LOG" 'BenchmarkEventsPerFlow/tierb=on' events/flow)"
RULE_SEL_NS="$(pick "$MICRO_LOG" 'BenchmarkRuleSelect/rules=1000' 3)"
RULE_SEL_ALLOCS="$(awk '$1 ~ /^BenchmarkRuleSelect\/rules=1000/ {for(i=1;i<NF;i++) if($(i+1)=="allocs/op") print $i}' "$MICRO_LOG" | head -1)"
RULE_REF_NS="$(pick "$MICRO_LOG" 'BenchmarkRuleSelectReference/rules=1000' 3)"

jsonnum() { [[ -n "${1:-}" ]] && echo "$1" || echo "null"; }

FIG10_S=null; FIG12_S=null; FIG13_S=null
if [[ -s "$FIG_LOG" ]]; then
  f10="$(pick "$FIG_LOG" BenchmarkFig10TCPStoreLatency 3)"
  f12="$(pick "$FIG_LOG" BenchmarkFig12FailureRecovery 3)"
  f13="$(pick "$FIG_LOG" BenchmarkFig13Scalability 3)"
  [[ -n "$f10" ]] && FIG10_S="$(awk -v n="$f10" 'BEGIN{printf "%.2f", n/1e9}')"
  [[ -n "$f12" ]] && FIG12_S="$(awk -v n="$f12" 'BEGIN{printf "%.2f", n/1e9}')"
  [[ -n "$f13" ]] && FIG13_S="$(awk -v n="$f13" 'BEGIN{printf "%.2f", n/1e9}')"
fi

cat > "$OUT" <<EOF
{
  "seed_baseline": {
    "note": "pre-fast-path: binary event heap, closure Send, per-segment clones",
    "storage_note": "pre-zero-alloc storage dataplane: Sprintf flow keys, per-call record/batch allocation, strings.Fields parser, container/list LRU",
    "storage_write_ns_op": 38564,
    "storage_write_allocs_op": 87,
    "memcache_session_ns_op": 5193,
    "memcache_session_allocs_op": 27,
    "simulator_throughput_ns_op": 213.4,
    "simulator_throughput_B_op": 73,
    "simulator_throughput_allocs_op": 4,
    "event_loop_events_per_sec": 4700000,
    "fig10_wall_s": 23.41,
    "fig12_wall_s": 7.62,
    "fig13_wall_s": 172.2,
    "headline_metrics": {
      "fig10_replication_latency_overhead_pct": 10.29,
      "fig10_replication_cpu_ratio": 2.0,
      "fig10_set_median_40k_ms": 0.311,
      "fig12_yoda_broken_pct": 0,
      "fig12_yoda_max_extra_s": 3.0,
      "fig12_haproxy_noretry_broken_pct": 0.1081,
      "fig12_haproxy_retry_max_s": 30.19,
      "fig13_instances_added": 3,
      "fig13_broken_flows": 0
    }
  },
  "current": {
    "event_loop_ns_op": $(jsonnum "$EVLOOP_NS"),
    "event_loop_events_per_sec": $(jsonnum "$EVLOOP_EPS"),
    "event_loop_allocs_op": $(jsonnum "$EVLOOP_ALLOCS"),
    "timer_churn_ns_op": $(jsonnum "$TIMER_NS"),
    "tcp_throughput_MB_s": $(jsonnum "$TCP_MBS"),
    "tcp_batch_rx_ns_seg": $(jsonnum "$TCP_BATCH_NSSEG"),
    "tcp_scalar_rx_ns_seg": $(jsonnum "$TCP_SCALAR_NSSEG"),
    "host_demux_ns_op": $(jsonnum "$HOST_DEMUX_NS"),
    "host_alloc_port_ns_op": $(jsonnum "$HOST_ALLOCPORT_NS"),
    "flow_fast_path_ns_op": $(jsonnum "$FLOW_NS"),
    "simulator_throughput_ns_op": $(jsonnum "$SIM_NS"),
    "storage_write_ns_op": $(jsonnum "$STORAGE_NS"),
    "storage_write_allocs_op": $(jsonnum "$STORAGE_ALLOCS"),
    "memcache_session_ns_op": $(jsonnum "$MCSESS_NS"),
    "memcache_session_allocs_op": $(jsonnum "$MCSESS_ALLOCS"),
    "memcache_session_reference_ns_op": $(jsonnum "$MCSESS_REF_NS"),
    "storage_b_batched_roundtrips_per_write": $(jsonnum "$SB_BATCH_RT"),
    "storage_b_sequential_roundtrips_per_write": $(jsonnum "$SB_SEQ_RT"),
    "storage_b_batched_virtual_us": $(jsonnum "$SB_BATCH_US"),
    "storage_b_sequential_virtual_us": $(jsonnum "$SB_SEQ_US"),
    "reconfig_migration_flows_per_s": $(jsonnum "$RECONFIG_TPUT"),
    "reconfig_drain_virtual_ms": $(jsonnum "$RECONFIG_DRAIN_MS"),
    "sharded_note": "measured on $(nproc) CPU(s); with one hardware thread the shard speedup reflects working-set locality only, not parallel execution",
    "cpu_count": $(nproc),
    "gomaxprocs": ${GOMAXPROCS:-$(nproc)},
    "sharded_events_per_s": {
      "shards_1": $(jsonnum "$SHARD1_EPS"),
      "shards_2": $(jsonnum "$SHARD2_EPS"),
      "shards_4": $(jsonnum "$SHARD4_EPS"),
      "shards_8": $(jsonnum "$SHARD8_EPS")
    },
    "mflow_mem_bytes_per_flow": $(jsonnum "$MFLOW_BPF"),
    "mflow_events_per_s": $(jsonnum "$MFLOW_EPS"),
    "flowmap_bytes_per_flow": $(jsonnum "$FM_BPF"),
    "flowmap_map_baseline_bytes_per_flow": $(jsonnum "$FM_MAP_BPF"),
    "flowmap_lookup_ns_op": $(jsonnum "$FM_LOOKUP_NS"),
    "flowmap_map_baseline_lookup_ns_op": $(jsonnum "$FM_LOOKUP_MAP_NS"),
    "flowmap_lookup_allocs_op": $(jsonnum "$FM_LOOKUP_ALLOCS"),
    "flowmap_churn_ns_op": $(jsonnum "$FM_CHURN_NS"),
    "storage_roundtrips_per_flow_paper": $(jsonnum "$RT_PAPER"),
    "storage_roundtrips_per_flow_hybrid": $(jsonnum "$RT_HYBRID"),
    "events_per_flow_tierb_off": $(jsonnum "$EPF_OFF"),
    "events_per_flow_tierb_on": $(jsonnum "$EPF_ON"),
    "rule_select_ns_op": $(jsonnum "$RULE_SEL_NS"),
    "rule_select_allocs_op": $(jsonnum "$RULE_SEL_ALLOCS"),
    "rule_select_reference_ns_op": $(jsonnum "$RULE_REF_NS"),
    "fig10_wall_s": $FIG10_S,
    "fig12_wall_s": $FIG12_S,
    "fig13_wall_s": $FIG13_S
  }
}
EOF
echo "wrote $OUT"
