#!/usr/bin/env bash
# ci.sh — the checks a change must pass before merging.
#
#   1. go vet          static checks
#   2. go build        everything compiles, including cmd/
#   3. go test -race   full suite under the race detector
#   4. benchmarks      every Benchmark* compiles and runs one iteration
#      (the heavy figure benchmarks are excluded by name; run
#      scripts/bench.sh for real numbers)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dataplane fast-fail (vet + race on rules/httpsim/core/tcpstore/memcache/reconfig) =="
# The compiled rule engine, the request parser it reads through, the
# write-barrier dataplane, its store client, the zero-copy memcached
# protocol+engine under it, and the live reconfiguration engine are where
# regressions bite hardest; vet and race them first so a broken index,
# barrier, or parser fails in seconds, not after the full suite.
go vet ./internal/rules/ ./internal/httpsim/ ./internal/core/ ./internal/tcpstore/ ./internal/memcache/ ./internal/reconfig/
go test -race ./internal/rules/ ./internal/httpsim/ ./internal/core/ ./internal/tcpstore/ ./internal/memcache/ ./internal/reconfig/

echo "== sharded dataplane fast-fail (race at 4 shards: netsim + whole-stack e2e) =="
# The conservative-sync coordinator is lock-free by design (happens-before
# comes only from the round barriers), so the race detector on a 4-shard
# run is the proof the handoff discipline holds end to end.
go test -race ./internal/netsim/ -args -shards=4
go test -race -run 'TestSharded' ./internal/core/ -args -shards=4

echo "== rng lint (grep fast-fail; TestNoStrayRNGConstruction is the test half) =="
# Only netsim (per-shard RNGs) and the trial-level drivers may construct
# generators; dataplane components must cache Network.Rand at build time.
if grep -rn --include='*.go' 'rand\.New(' cmd examples internal *.go 2>/dev/null \
  | grep -v '_test\.go:' \
  | grep -Ev '^internal/(netsim|trace|workload|experiments)/'; then
  echo "FAIL: rand.New outside the netsim/trace/workload/experiments allowlist" >&2
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmarks (1 iteration, smoke) =="
go test -run '^$' -bench '.' -benchtime=1x \
  -skip 'BenchmarkFig10|BenchmarkFig12|BenchmarkFig13|BenchmarkMemcachedRealTCP' \
  ./... 2>/dev/null | grep -E '^(Benchmark|ok|FAIL)' || true

echo "CI PASS"
