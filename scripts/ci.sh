#!/usr/bin/env bash
# ci.sh — the checks a change must pass before merging.
#
#   1. gofmt -s -l + go vet   formatting and static checks, whole tree
#   2. fast-fail stages       vet + race on the hottest packages, then
#                             the 4-shard race runs and the RNG lint
#   3. go build               everything compiles, including cmd/
#   4. go test -race          full suite under the race detector
#   5. benchmarks             every Benchmark* compiles and runs one
#      iteration (the heavy figure benchmarks are excluded by name; run
#      scripts/bench.sh for real numbers)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format + vet clean sweep (gofmt -s -l, go vet ./...) =="
# Formatting drift and vet findings are the cheapest checks in the file;
# run them before anything that compiles or executes tests.
if unformatted=$(gofmt -s -l cmd examples internal scripts 2>/dev/null); [ -n "$unformatted" ]; then
  echo "FAIL: gofmt -s -l reports unformatted files:" >&2
  echo "$unformatted" >&2
  exit 1
fi
go vet ./...

echo "== dataplane fast-fail (vet + race on flowmap/rules/httpsim/core/l4lb/tcpstore/memcache/reconfig/stateless) =="
# The compact flow-map layer, the compiled rule engine, the request
# parser it reads through, the write-barrier dataplane, the L4 mux
# refactored onto the flow map, its store client, the zero-copy
# memcached protocol+engine under it, the live reconfiguration engine,
# and the stateless derivation table the hybrid recovery mode trusts
# are where regressions bite hardest; vet and race them first so a
# broken index, barrier, parser, or cookie decode fails in seconds, not
# after the full suite.
go vet ./internal/flowmap/ ./internal/rules/ ./internal/httpsim/ ./internal/core/ ./internal/l4lb/ ./internal/tcpstore/ ./internal/memcache/ ./internal/reconfig/ ./internal/stateless/
go test -race ./internal/flowmap/ ./internal/rules/ ./internal/httpsim/ ./internal/core/ ./internal/l4lb/ ./internal/tcpstore/ ./internal/memcache/ ./internal/reconfig/ ./internal/stateless/

echo "== sharded dataplane fast-fail (race at 4 shards: netsim + l4lb SNAT + whole-stack e2e) =="
# The conservative-sync coordinator is lock-free by design (happens-before
# comes only from the round barriers), so the race detector on a 4-shard
# run is the proof the handoff discipline holds end to end. The l4lb run
# covers cross-shard SNAT-range reads against the mux flow tables.
go test -race ./internal/netsim/ -args -shards=4
go test -race -run 'TestSharded' ./internal/l4lb/ -args -shards=4
go test -race -run 'TestSharded' ./internal/core/ -args -shards=4
# Cross-shard batched ingest: handoff bursts ride trains into the batch
# demux path on the receiving shard; the race run proves batch dispatch
# added no cross-shard sharing.
go test -race -run 'TestShardedBatchIngest' ./internal/tcp/
# Hybrid recovery at 4 shards: exact recovery (recovered == deadFlows,
# zero leaks, zero drops, zero pending) with proof-gated adoption.
go test -race -run 'TestMflowHybrid' ./internal/experiments/

echo "== rng lint (grep fast-fail; TestNoStrayRNGConstruction is the test half) =="
# Only netsim (per-shard RNGs) and the trial-level drivers may construct
# generators; dataplane components must cache Network.Rand at build time.
if grep -rn --include='*.go' 'rand\.New(' cmd examples internal *.go 2>/dev/null \
  | grep -v '_test\.go:' \
  | grep -Ev '^internal/(netsim|trace|workload|experiments)/'; then
  echo "FAIL: rand.New outside the netsim/trace/workload/experiments allowlist" >&2
  exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmarks (1 iteration, smoke) =="
go test -run '^$' -bench '.' -benchtime=1x \
  -skip 'BenchmarkFig10|BenchmarkFig12|BenchmarkFig13|BenchmarkMemcachedRealTCP' \
  ./... 2>/dev/null | grep -E '^(Benchmark|ok|FAIL)' || true

echo "== bench regression gate (>15% vs BENCH_core.json fails) =="
# Guard the dataplane's headline numbers: the event-loop and flow
# fast-path microbenchmarks may not regress more than 15% over the
# recorded ns/op, and mflow events/s plus TCP bulk MB/s must stay
# within 15% of the recorded rates. Best-of-3 runs absorb machine
# noise; after an intentional perf change, re-baseline with
# scripts/bench.sh.
REC_EVLOOP_NS=$(awk -F'[:,]' '/"event_loop_ns_op"/ {gsub(/[ "]/,"",$2); print $2; exit}' BENCH_core.json 2>/dev/null || true)
REC_MFLOW_EPS=$(awk -F'[:,]' '/"mflow_events_per_s"/ {gsub(/[ "]/,"",$2); print $2; exit}' BENCH_core.json 2>/dev/null || true)
REC_FLOW_NS=$(awk -F'[:,]' '/"flow_fast_path_ns_op"/ {gsub(/[ "]/,"",$2); print $2; exit}' BENCH_core.json 2>/dev/null || true)
REC_TCP_MBS=$(awk -F'[:,]' '/"tcp_throughput_MB_s"/ {gsub(/[ "]/,"",$2); print $2; exit}' BENCH_core.json 2>/dev/null || true)
if [[ -z "${REC_EVLOOP_NS:-}" || "$REC_EVLOOP_NS" == "null" || -z "${REC_MFLOW_EPS:-}" || "$REC_MFLOW_EPS" == "null" ]]; then
  echo "SKIP: BENCH_core.json lacks recorded event_loop_ns_op / mflow_events_per_s"
else
  GATE_LOG="$(mktemp)"
  go test -run '^$' -bench 'BenchmarkNetsimEventLoop$' -count=3 ./internal/netsim/ | tee "$GATE_LOG"
  go test -run '^$' -bench 'BenchmarkMflowMemPerFlow' -benchtime 1x -count=3 ./internal/experiments/ | tee -a "$GATE_LOG"
  go test -run '^$' -bench 'BenchmarkFlowFastPath$' -count=3 ./internal/core/ | tee -a "$GATE_LOG"
  go test -run '^$' -bench 'BenchmarkTCPThroughput$' -count=3 ./internal/tcp/ | tee -a "$GATE_LOG"
  NEW_EVLOOP_NS=$(awk '$1 ~ /^BenchmarkNetsimEventLoop/ {if (min=="" || $3+0<min+0) min=$3} END{print min}' "$GATE_LOG")
  NEW_MFLOW_EPS=$(awk '$1 ~ /^BenchmarkMflowMemPerFlow/ {for(i=1;i<NF;i++) if($(i+1)=="events/s" && $i+0>max+0) max=$i} END{print max}' "$GATE_LOG")
  NEW_FLOW_NS=$(awk '$1 ~ /^BenchmarkFlowFastPath/ {if (min=="" || $3+0<min+0) min=$3} END{print min}' "$GATE_LOG")
  NEW_TCP_MBS=$(awk '$1 ~ /^BenchmarkTCPThroughput/ {for(i=1;i<NF;i++) if($(i+1)=="MB/s" && $i+0>max+0) max=$i} END{print max}' "$GATE_LOG")
  rm -f "$GATE_LOG"
  awk -v new="$NEW_EVLOOP_NS" -v rec="$REC_EVLOOP_NS" 'BEGIN{
    if (new+0 > rec*1.15) { printf "FAIL: event loop %.1f ns/op vs recorded %.1f (>15%% regression)\n", new, rec; exit 1 }
    printf "event loop %.1f ns/op vs recorded %.1f ns/op: ok\n", new, rec }'
  awk -v new="$NEW_MFLOW_EPS" -v rec="$REC_MFLOW_EPS" 'BEGIN{
    if (new+0 < rec/1.15) { printf "FAIL: mflow %.0f events/s vs recorded %.0f (>15%% regression)\n", new, rec; exit 1 }
    printf "mflow %.0f events/s vs recorded %.0f events/s: ok\n", new, rec }'
  if [[ -n "${REC_FLOW_NS:-}" && "$REC_FLOW_NS" != "null" ]]; then
    awk -v new="$NEW_FLOW_NS" -v rec="$REC_FLOW_NS" 'BEGIN{
      if (new+0 > rec*1.15) { printf "FAIL: flow fast path %.1f ns/op vs recorded %.1f (>15%% regression)\n", new, rec; exit 1 }
      printf "flow fast path %.1f ns/op vs recorded %.1f ns/op: ok\n", new, rec }'
  fi
  if [[ -n "${REC_TCP_MBS:-}" && "$REC_TCP_MBS" != "null" ]]; then
    awk -v new="$NEW_TCP_MBS" -v rec="$REC_TCP_MBS" 'BEGIN{
      if (new+0 < rec/1.15) { printf "FAIL: tcp throughput %.1f MB/s vs recorded %.1f (>15%% regression)\n", new, rec; exit 1 }
      printf "tcp throughput %.1f MB/s vs recorded %.1f MB/s: ok\n", new, rec }'
  fi
fi

echo "CI PASS"
